package support

import (
	"testing"
	"time"
)

func TestRendererModalitiesByAbility(t *testing.T) {
	r := NewRenderer([]AbilityProfile{
		{Name: "A", Sees: false, Hears: true, Touches: true}, // visually impaired
		FullAbility("B"),
	})

	// Info alert to the sighted member: text only.
	rb := r.Render(Alert{Severity: Info, Subject: "B", Message: "drink water"})
	if len(rb) != 1 {
		t.Fatalf("renderings = %d", len(rb))
	}
	if !hasModality(rb[0], VisualText) || hasModality(rb[0], AudioCue) {
		t.Errorf("B info modalities = %v", rb[0].Modalities)
	}

	// The same info alert to A must use audio, never text.
	ra := r.Render(Alert{Severity: Info, Subject: "A", Message: "drink water"})
	if hasModality(ra[0], VisualText) {
		t.Error("text rendered for a non-seeing recipient")
	}
	if !hasModality(ra[0], AudioCue) {
		t.Errorf("A info modalities = %v", ra[0].Modalities)
	}

	// Critical alerts escalate: B gets light + audio + haptics too.
	rc := r.Render(Alert{Severity: Critical, Subject: "B", Message: "fire"})
	for _, m := range []Modality{VisualText, LightCue, AudioCue, HapticCue} {
		if !hasModality(rc[0], m) {
			t.Errorf("critical to B missing %v", m)
		}
	}
}

func TestRendererCrewWideAlert(t *testing.T) {
	r := NewRenderer([]AbilityProfile{FullAbility("A"), FullAbility("B"), FullAbility("C")})
	out := r.Render(Alert{Severity: Warning, Message: "pressure drop in airlock"})
	if len(out) != 3 {
		t.Fatalf("crew-wide renderings = %d", len(out))
	}
	if out[0].Recipient != "A" || out[2].Recipient != "C" {
		t.Errorf("recipients = %v, %v, %v", out[0].Recipient, out[1].Recipient, out[2].Recipient)
	}
	if out[0].Text != "WARNING: pressure drop in airlock" {
		t.Errorf("text = %q", out[0].Text)
	}
}

func TestRendererNoPerceivableChannelEscalates(t *testing.T) {
	// During an EVA with gloves, dark, and suit noise, everything is
	// impaired — the renderer must still deliver on all channels rather
	// than drop the alert.
	r := NewRenderer([]AbilityProfile{{Name: "F"}})
	out := r.Render(Alert{Severity: Critical, Subject: "F", Message: "suit water leak"})
	if len(out[0].Modalities) != 4 {
		t.Errorf("deaf-blind-numb rendering = %v", out[0].Modalities)
	}
}

func TestRendererTemporaryImpairment(t *testing.T) {
	r := NewRenderer([]AbilityProfile{FullAbility("D")})
	// D dons an EVA suit: vision narrowed, gloves on.
	r.SetProfile(AbilityProfile{Name: "D", Sees: false, Hears: true, Touches: false})
	out := r.Render(Alert{Severity: Warning, Subject: "D", Message: "O2 margin low"})
	if hasModality(out[0], VisualText) || hasModality(out[0], HapticCue) {
		t.Errorf("suited modalities = %v", out[0].Modalities)
	}
	if !hasModality(out[0], AudioCue) {
		t.Error("suited member got no audio")
	}
	// Unknown members default to full ability.
	if p := r.Profile("Z"); !p.Sees || !p.Hears || !p.Touches {
		t.Errorf("default profile = %+v", p)
	}
}

func TestModalityString(t *testing.T) {
	if VisualText.String() != "visual-text" || HapticCue.String() != "haptic" {
		t.Error("modality names")
	}
	if Modality(9).String() != "modality(9)" {
		t.Error("unknown modality")
	}
}

func hasModality(r Rendering, m Modality) bool {
	for _, v := range r.Modalities {
		if v == m {
			return true
		}
	}
	return false
}

func TestLedgerConsumeAndFloor(t *testing.T) {
	l := NewLedger(map[Resource]Stock{
		Water: {Level: 100, ReservedMin: 20},
	})
	if err := l.Consume(time.Hour, Water, 30); err != nil {
		t.Fatal(err)
	}
	if lv, _ := l.Level(Water); lv != 70 {
		t.Errorf("level = %v", lv)
	}
	// Floor enforcement.
	if err := l.Consume(2*time.Hour, Water, 60); err == nil {
		t.Error("overdraw accepted")
	}
	if err := l.Consume(2*time.Hour, Water, -1); err == nil {
		t.Error("negative consumption accepted")
	}
	if _, err := l.Level(Oxygen); err == nil {
		t.Error("unknown resource accepted")
	}
	if err := l.Resupply(3*time.Hour, Water, 50); err != nil {
		t.Fatal(err)
	}
	if lv, _ := l.Level(Water); lv != 120 {
		t.Errorf("after resupply = %v", lv)
	}
}

func TestLedgerRateAndForecast(t *testing.T) {
	l := NewLedger(map[Resource]Stock{
		Water: {Level: 100, ReservedMin: 10},
		Food:  {Level: 50, ReservedMin: 5},
	})
	// 10 units/day of water over 3 days; almost no food usage.
	for h := 1; h <= 72; h++ {
		if err := l.Consume(time.Duration(h)*time.Hour, Water, 10.0/24); err != nil {
			t.Fatal(err)
		}
	}
	rate := l.RatePerDay(Water, 48*time.Hour)
	if rate < 9 || rate > 11 {
		t.Errorf("water rate = %v", rate)
	}
	fc := l.Forecast(48 * time.Hour)
	if len(fc) != 2 {
		t.Fatalf("forecast = %v", fc)
	}
	// Water is the most urgent.
	if fc[0].Resource != Water {
		t.Errorf("most urgent = %v", fc[0].Resource)
	}
	// 100 - 30 consumed = 70; floor 10 -> 60 left at ~10/day = ~6 days.
	if fc[0].DaysLeft < 5 || fc[0].DaysLeft > 7 {
		t.Errorf("water days left = %v", fc[0].DaysLeft)
	}
}

func TestResourceWatchAlerts(t *testing.T) {
	l := NewLedger(map[Resource]Stock{
		Food: {Level: 20, ReservedMin: 2},
	})
	w := NewResourceWatch(l, 10*24*time.Hour) // 10-day horizon
	// Day 1-2: eat 3/day -> ~6 days left < 10-day horizon: warning...
	for h := 1; h <= 48; h++ {
		if err := l.Consume(time.Duration(h)*time.Hour, Food, 3.0/24); err != nil {
			t.Fatal(err)
		}
	}
	alerts := w.Check(48 * time.Hour)
	if len(alerts) != 1 || alerts[0].Severity != Critical && alerts[0].Severity != Warning {
		t.Fatalf("alerts = %v", alerts)
	}
	first := alerts[0].Severity
	// Same state: no duplicate alert.
	if again := w.Check(49 * time.Hour); len(again) != 0 {
		t.Errorf("duplicate alerts: %v", again)
	}
	// Consumption accelerates: escalation to critical (if not already).
	for h := 49; h <= 72; h++ {
		if err := l.Consume(time.Duration(h)*time.Hour, Food, 6.0/24); err != nil {
			t.Fatal(err)
		}
	}
	esc := w.Check(72 * time.Hour)
	if first == Warning && (len(esc) != 1 || esc[0].Severity != Critical) {
		t.Errorf("escalation = %v", esc)
	}
}

func TestResourceWatchRecovery(t *testing.T) {
	l := NewLedger(map[Resource]Stock{
		Power: {Level: 10, ReservedMin: 1},
	})
	w := NewResourceWatch(l, 5*24*time.Hour)
	for h := 1; h <= 24; h++ {
		if err := l.Consume(time.Duration(h)*time.Hour, Power, 2.0/24); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Check(24 * time.Hour); len(got) == 0 {
		t.Fatal("no alert before resupply")
	}
	// Big resupply: projection recovers, and a later shortage re-alerts.
	if err := l.Resupply(25*time.Hour, Power, 100); err != nil {
		t.Fatal(err)
	}
	if got := w.Check(26 * time.Hour); len(got) != 0 {
		t.Errorf("alert after recovery: %v", got)
	}
}
