package support

import (
	"time"

	"icares/internal/record"
	"icares/internal/sociometry"
	"icares/internal/speech"
	"icares/internal/store"
)

// Analytics couples the support daemon to the sociometric pipeline's
// incremental operators: it owns a live dataset, keeps a following pipeline
// subscribed to it, and feeds it every record the daemon ingests (after the
// privacy scrub). Where the detectors answer "is something wrong right
// now", the analytics answer the paper's sociometric questions — passages,
// mobility, speech, face-to-face time — continuously over everything
// received so far, recomputing only the (astronaut, day) windows each new
// record lands in rather than re-running the offline batch analysis.
type Analytics struct {
	live *store.Dataset
	pipe *sociometry.Pipeline
	stop func()
}

// NewAnalytics builds a live analytics instance for the given source. The
// source's record source (Dataset or Data) is ignored: analytics own a
// fresh dataset that fills through Ingest, so the mission's offline store
// is never mutated by the online path. Options are passed to the pipeline.
func NewAnalytics(src sociometry.Source, opts ...sociometry.Option) (*Analytics, error) {
	live := store.NewDataset()
	src.Dataset = live
	src.Data = nil
	p, err := sociometry.NewPipeline(src, opts...)
	if err != nil {
		return nil, err
	}
	a := &Analytics{live: live, pipe: p}
	a.stop = p.Follow()
	return a, nil
}

// Ingest folds one record in. Like the daemon, analytics assume a single
// ingesting goroutine; queries may run concurrently with ingestion.
func (a *Analytics) Ingest(id store.BadgeID, rec record.Record) {
	a.live.Series(id).Append(rec)
}

// Pipeline exposes the following pipeline for ad-hoc queries.
func (a *Analytics) Pipeline() *sociometry.Pipeline { return a.pipe }

// Dataset exposes the live dataset (e.g. for persistence on mission end).
func (a *Analytics) Dataset() *store.Dataset { return a.live }

// Close cancels the pipeline's dataset subscription. The pipeline stays
// queryable over what has been ingested.
func (a *Analytics) Close() {
	if a.stop != nil {
		a.stop()
		a.stop = nil
	}
}

// AnalyticsSnapshot is a point-in-time sociometric summary over everything
// ingested so far.
type AnalyticsSnapshot struct {
	// Records is the total record count folded in.
	Records int
	// Passages is the crew's Fig. 2 transition total.
	Passages int
	// Walking is each astronaut's worn-time walking fraction.
	Walking map[string]float64
	// Speech is each astronaut's worn-time speech fraction.
	Speech map[string]float64
	// FaceToFace is the total pairwise IR-confirmed interaction time.
	FaceToFace time.Duration
}

// Snapshot computes the current summary. Repeated snapshots between
// ingests answer from the pipeline's caches; after ingests, only the
// touched windows recompute.
func (a *Analytics) Snapshot() AnalyticsSnapshot {
	snap := AnalyticsSnapshot{
		Records:  a.live.TotalRecords(),
		Passages: a.pipe.Transitions(nil).Total(),
		Walking:  make(map[string]float64),
		Speech:   make(map[string]float64),
	}
	for _, name := range a.pipe.Source().Names {
		snap.Walking[name] = a.pipe.WalkingFraction(name)
		snap.Speech[name] = speech.Fraction(a.pipe.Frames(name))
	}
	for _, d := range a.pipe.Pairwise().IR {
		snap.FaceToFace += d
	}
	return snap
}
