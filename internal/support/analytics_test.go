package support

import (
	"sync"
	"testing"
	"time"

	"icares/internal/habitat"
	"icares/internal/mission"
	"icares/internal/record"
	"icares/internal/simtime"
	"icares/internal/sociometry"
	"icares/internal/store"
)

// analyticsFixture runs one short mission shared by the analytics tests.
var (
	anaOnce sync.Once
	anaRes  *mission.Result
	anaErr  error
)

func analyticsMission(t *testing.T) *mission.Result {
	t.Helper()
	if testing.Short() {
		t.Skip("mission fixture in -short mode")
	}
	anaOnce.Do(func() {
		sc := mission.DefaultScenario(4242)
		sc.Days = 3
		anaRes, anaErr = mission.Run(mission.Config{Seed: 4242, Scenario: sc})
	})
	if anaErr != nil {
		t.Fatal(anaErr)
	}
	return anaRes
}

func analyticsSource(res *mission.Result) sociometry.Source {
	profiles := make(map[string]float64)
	for _, r := range res.Roster {
		profiles[r.Name] = r.Traits.F0Hz
	}
	return sociometry.Source{
		Habitat: res.Habitat,
		// Dataset is supplied by NewAnalytics.
		Names: mission.Names(),
		BadgeFor: func(name string, day int) store.BadgeID {
			return res.Assignment.TrueBadgeFor(name, day)
		},
		VoiceProfiles: profiles,
		FirstDay:      res.Config.FirstDataDay,
		LastDay:       res.Config.Scenario.Days,
	}
}

// TestAnalyticsMatchesBatchPipeline streams a whole mission through the
// daemon and asserts the live analytics end up byte-identical to the
// offline batch pipeline over the same records: the batch path is "fold
// everything".
func TestAnalyticsMatchesBatchPipeline(t *testing.T) {
	res := analyticsMission(t)
	src := analyticsSource(res)

	d := NewDaemon()
	a, err := NewAnalytics(src)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	d.AttachAnalytics(a)
	assignment := res.Assignment
	r := NewReplayer(d, res.Dataset, func(id store.BadgeID, day int) string {
		w, _ := assignment.TrueWearerOf(id, day)
		return w
	})
	// Replay the raw dataset through the daemon BEFORE any batch analysis:
	// rectification rewrites timestamps in place, and the live path must
	// receive the records as the gateway would deliver them.
	horizon := simtime.StartOfDay(res.Config.Scenario.Days + 1)
	if n := r.Run(0, horizon); n != res.Dataset.TotalRecords() {
		t.Fatalf("replayed %d of %d records", n, res.Dataset.TotalRecords())
	}

	batchSrc := analyticsSource(res)
	batchSrc.Dataset = res.Dataset
	batch, err := sociometry.NewPipeline(batchSrc)
	if err != nil {
		t.Fatal(err)
	}

	liveReport := a.Pipeline().Report()
	batchReport := batch.Report()
	if liveReport != batchReport {
		t.Error("live analytics report diverged from batch pipeline report")
	}

	snap := a.Snapshot()
	if snap.Records != res.Dataset.TotalRecords() {
		t.Errorf("snapshot records = %d, want %d", snap.Records, res.Dataset.TotalRecords())
	}
	if want := batch.Transitions(nil).Total(); snap.Passages != want {
		t.Errorf("snapshot passages = %d, want %d", snap.Passages, want)
	}
	for _, name := range mission.Names() {
		if want := batch.WalkingFraction(name); snap.Walking[name] != want {
			t.Errorf("%s walking = %v, want %v", name, snap.Walking[name], want)
		}
	}
}

// TestAnalyticsIncrementalSnapshots folds a mission in day-sized slices
// with a snapshot after each: the analytics must answer continuously as
// data accumulates, and the record count must track ingestion exactly.
func TestAnalyticsIncrementalSnapshots(t *testing.T) {
	res := analyticsMission(t)
	d := NewDaemon()
	a, err := NewAnalytics(analyticsSource(res))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	d.AttachAnalytics(a)
	assignment := res.Assignment
	r := NewReplayer(d, res.Dataset, func(id store.BadgeID, day int) string {
		w, _ := assignment.TrueWearerOf(id, day)
		return w
	})

	var prevRecords int
	total := 0
	for day := 1; day <= res.Config.Scenario.Days; day++ {
		total += r.Run(simtime.StartOfDay(day), simtime.StartOfDay(day+1))
		snap := a.Snapshot()
		if snap.Records != total {
			t.Fatalf("day %d: snapshot records = %d, want %d", day, snap.Records, total)
		}
		if snap.Records < prevRecords {
			t.Fatalf("day %d: record count went backwards", day)
		}
		prevRecords = snap.Records
	}
	if a.Snapshot().Passages == 0 {
		t.Error("no passages after full mission")
	}
}

// TestAnalyticsRespectsPrivacyScrub pins that suppressed records never
// reach the live analytics: the scrub happens before the analytics hook.
func TestAnalyticsRespectsPrivacyScrub(t *testing.T) {
	src := sociometry.Source{
		Habitat:  habitat.Standard(),
		Names:    []string{"A"},
		BadgeFor: func(string, int) store.BadgeID { return 1 },
		FirstDay: 1,
		LastDay:  1,
	}
	d := NewDaemon()
	a, err := NewAnalytics(src, sociometry.WithoutRectification())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	d.AttachAnalytics(a)

	d.Privacy().Suppress("A", 10*time.Minute, 20*time.Minute)
	mic := func(at time.Duration) record.Record {
		return record.Record{Local: at, Kind: record.KindMic, LoudnessDB: 70}
	}
	d.Ingest(5*time.Minute, "A", 1, mic(5*time.Minute))
	d.Ingest(15*time.Minute, "A", 1, mic(15*time.Minute)) // suppressed
	d.Ingest(15*time.Minute, "A", 1, accelRec(15*time.Minute, 50))
	d.Ingest(25*time.Minute, "A", 1, mic(25*time.Minute))

	if got := a.Dataset().TotalRecords(); got != 3 {
		t.Fatalf("analytics hold %d records, want 3 (mic in privacy window scrubbed)", got)
	}
	for _, r := range a.Dataset().Series(1).All() {
		if r.Kind == record.KindMic && r.Local >= 10*time.Minute && r.Local < 20*time.Minute {
			t.Error("suppressed mic record reached the analytics")
		}
	}
}
