package support

import (
	"testing"
	"time"

	"icares/internal/habitat"
	"icares/internal/record"
	"icares/internal/stats"
)

// BenchmarkDaemonIngest measures the streaming path with the full detector
// suite — the per-record cost that bounds how many badges one habitat node
// can serve in real time.
func BenchmarkDaemonIngest(b *testing.B) {
	d := NewDaemon()
	d.Register(NewInactivityDetector())
	d.Register(NewQuietCrewDetector())
	d.Register(NewBatteryDetector())
	d.Register(NewHydrationDetector(habitat.Standard(), 0))
	d.Register(NewWearComplianceDetector())

	rng := stats.NewRNG(1)
	names := []string{"A", "B", "C", "D", "E", "F"}
	recs := make([]record.Record, 4096)
	for i := range recs {
		at := time.Duration(i) * time.Second
		switch i % 4 {
		case 0:
			recs[i] = record.Record{Local: at, Kind: record.KindAccel,
				AX: int16(rng.Norm(0, 100)), AZ: 1000}
		case 1:
			recs[i] = record.Record{Local: at, Kind: record.KindMic,
				SpeechDetected: rng.Bool(0.3), LoudnessDB: float32(rng.Range(30, 75)),
				SpeechFraction: float32(rng.Float64())}
		case 2:
			recs[i] = record.Record{Local: at, Kind: record.KindBeacon,
				PeerID: uint16(rng.Intn(27) + 1), RSSI: float32(rng.Range(-90, -40))}
		default:
			recs[i] = record.Record{Local: at, Kind: record.KindBattery,
				BatteryPct: float32(rng.Range(30, 100))}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := recs[i%len(recs)]
		d.Ingest(rec.Local+time.Duration(i/len(recs))*time.Hour, names[i%len(names)], 1, rec)
	}
}

func BenchmarkRendererRender(b *testing.B) {
	r := NewRenderer([]AbilityProfile{
		{Name: "A", Hears: true, Touches: true},
		FullAbility("B"), FullAbility("C"), FullAbility("D"),
		FullAbility("E"), FullAbility("F"),
	})
	alert := Alert{Severity: Critical, Message: "pressure drop in airlock"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Render(alert)
	}
}
