package support

import (
	"errors"
	"fmt"
	"time"

	"icares/internal/uplink"
)

// Council implements the paper's safeguard against "harmful changes
// introduced by disobedient individuals": significant changes to the
// support system "require approvals from all the teammates and the mission
// control before any significant change to the system is applied". The
// decision rule here is a crew majority plus mission-control assent, with
// the mission-control vote travelling over the delayed uplink.
type Council struct {
	crew map[string]bool
	link *uplink.Link

	proposals map[uint64]*Proposal
	nextID    uint64
}

// ProposalStatus is the lifecycle of a change request.
type ProposalStatus int

// Proposal states.
const (
	Pending ProposalStatus = iota + 1
	Approved
	Rejected
)

// String returns the status label.
func (s ProposalStatus) String() string {
	switch s {
	case Pending:
		return "pending"
	case Approved:
		return "approved"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Proposal is one requested system change.
type Proposal struct {
	ID          uint64
	Proposer    string
	Change      string
	At          time.Duration
	votes       map[string]bool
	mcDecided   bool
	mcApproved  bool
	mcRequested bool
	status      ProposalStatus
	decidedAt   time.Duration
}

// Status returns the proposal's current state.
func (p *Proposal) Status() ProposalStatus { return p.status }

// DecidedAt returns when the proposal left Pending (zero while pending).
func (p *Proposal) DecidedAt() time.Duration { return p.decidedAt }

// Errors of the council.
var (
	ErrUnknownProposal = errors.New("support: unknown proposal")
	ErrNotCrew         = errors.New("support: voter is not a crew member")
	ErrDecided         = errors.New("support: proposal already decided")
)

// NewCouncil creates a council over the crew and the mission-control link.
// link may be nil for habitat-only decisions (then mission-control assent
// is implied — the degraded autonomous mode for link outages).
func NewCouncil(crew []string, link *uplink.Link) *Council {
	c := &Council{
		crew:      make(map[string]bool, len(crew)),
		link:      link,
		proposals: make(map[uint64]*Proposal),
	}
	for _, n := range crew {
		c.crew[n] = true
	}
	return c
}

// Propose opens a change request; the proposer's own approving vote is
// recorded, and the request is forwarded to mission control over the link.
func (c *Council) Propose(now time.Duration, proposer, change string) (*Proposal, error) {
	if !c.crew[proposer] {
		return nil, fmt.Errorf("%w: %q", ErrNotCrew, proposer)
	}
	c.nextID++
	p := &Proposal{
		ID: c.nextID, Proposer: proposer, Change: change, At: now,
		votes:  map[string]bool{proposer: true},
		status: Pending,
	}
	c.proposals[p.ID] = p
	if c.link != nil {
		if _, err := c.link.Send(now, uplink.Message{
			From: uplink.Habitat, Kind: uplink.Report,
			Topic: "council", Body: fmt.Sprintf("proposal %d: %s", p.ID, change),
			Bytes: len(change) + 32,
		}); err != nil {
			return nil, fmt.Errorf("forward proposal: %w", err)
		}
		p.mcRequested = true
	} else {
		// Autonomous mode: no mission control reachable.
		p.mcDecided, p.mcApproved = true, true
	}
	c.evaluate(now, p)
	return p, nil
}

// Vote records a crew member's vote.
func (c *Council) Vote(now time.Duration, id uint64, voter string, approve bool) error {
	p, ok := c.proposals[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownProposal, id)
	}
	if !c.crew[voter] {
		return fmt.Errorf("%w: %q", ErrNotCrew, voter)
	}
	if p.status != Pending {
		return fmt.Errorf("%w: %d is %v", ErrDecided, id, p.status)
	}
	p.votes[voter] = approve
	c.evaluate(now, p)
	return nil
}

// MissionControlDecision records the remote verdict; callers obtain it by
// receiving the council topic from the uplink at the habitat and passing
// the verdict here (the message transport is external to the tally).
func (c *Council) MissionControlDecision(now time.Duration, id uint64, approve bool) error {
	p, ok := c.proposals[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownProposal, id)
	}
	if p.status != Pending {
		return fmt.Errorf("%w: %d is %v", ErrDecided, id, p.status)
	}
	p.mcDecided = true
	p.mcApproved = approve
	c.evaluate(now, p)
	return nil
}

// Proposal returns a proposal by ID.
func (c *Council) Proposal(id uint64) (*Proposal, error) {
	p, ok := c.proposals[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownProposal, id)
	}
	return p, nil
}

// evaluate applies the decision rule: approved when a strict crew majority
// approves AND mission control approves; rejected when a crew majority
// rejects, or when mission control rejects.
func (c *Council) evaluate(now time.Duration, p *Proposal) {
	if p.status != Pending {
		return
	}
	yes, no := 0, 0
	for _, v := range p.votes {
		if v {
			yes++
		} else {
			no++
		}
	}
	majority := len(c.crew)/2 + 1
	switch {
	case p.mcDecided && !p.mcApproved:
		p.status = Rejected
	case no >= majority:
		p.status = Rejected
	case yes >= majority && p.mcDecided && p.mcApproved:
		p.status = Approved
	}
	if p.status != Pending {
		p.decidedAt = now
	}
}
