package support

import (
	"fmt"
	"math"
	"time"

	"icares/internal/habitat"
	"icares/internal/record"
	"icares/internal/simtime"
	"icares/internal/store"
)

// InactivityDetector raises a warning when a worn badge shows no movement
// for too long — the "protecting human life" function: an astronaut
// collapsed in a module would present exactly this signature.
type InactivityDetector struct {
	// MaxStill is how long a worn badge may stay motionless.
	MaxStill time.Duration
	// MoveSigma is the accel deviation (milli-g) counting as movement.
	MoveSigma float64
	// MaxGap is the longest ingestion silence still treated as live data.
	// An offloaded stream has outages (RF gaps, gateway restarts); absence
	// of records is not evidence of absence of movement, so after a longer
	// gap the detector re-baselines at the first post-gap record and stays
	// quiet during the gap itself rather than alerting on stale state.
	MaxGap time.Duration

	lastMove map[string]time.Duration
	worn     map[string]bool
	alerted  map[string]bool
	lastSeen map[string]time.Duration
}

// NewInactivityDetector returns a detector with 30-minute tolerance.
func NewInactivityDetector() *InactivityDetector {
	return &InactivityDetector{
		MaxStill:  30 * time.Minute,
		MoveSigma: 45,
		MaxGap:    5 * time.Minute,
		lastMove:  make(map[string]time.Duration),
		worn:      make(map[string]bool),
		alerted:   make(map[string]bool),
		lastSeen:  make(map[string]time.Duration),
	}
}

// Name implements Detector.
func (d *InactivityDetector) Name() string { return "inactivity" }

// Observe implements Detector.
func (d *InactivityDetector) Observe(at time.Duration, wearer string, _ store.BadgeID, rec record.Record) []Alert {
	if wearer == "" {
		return nil
	}
	if last, ok := d.lastSeen[wearer]; ok && d.MaxGap > 0 && at-last > d.MaxGap {
		// Ingestion gap: the pre-gap stillness clock is stale evidence.
		// Re-baseline so only post-gap stillness can accumulate.
		if _, hadMove := d.lastMove[wearer]; hadMove {
			d.lastMove[wearer] = at
		}
	}
	d.lastSeen[wearer] = at
	switch rec.Kind {
	case record.KindWear:
		d.worn[wearer] = rec.Worn
		if rec.Worn {
			d.lastMove[wearer] = at
			d.alerted[wearer] = false
		}
	case record.KindAccel:
		dev := math.Max(math.Abs(float64(rec.AX)), math.Abs(float64(rec.AY)))
		if dev >= d.MoveSigma {
			d.lastMove[wearer] = at
			d.alerted[wearer] = false
		}
	}
	return nil
}

// Sweep implements Detector.
func (d *InactivityDetector) Sweep(now time.Duration) []Alert {
	var out []Alert
	for wearer, worn := range d.worn {
		if !worn || d.alerted[wearer] {
			continue
		}
		last, ok := d.lastMove[wearer]
		if !ok {
			continue
		}
		if seen, ok := d.lastSeen[wearer]; ok && d.MaxGap > 0 && now-seen > d.MaxGap {
			// No fresh records: an ingestion outage, not a still astronaut.
			continue
		}
		if now-last >= d.MaxStill {
			d.alerted[wearer] = true
			out = append(out, Alert{
				At: now, Severity: Critical, Kind: d.Name(), Subject: wearer,
				Message: fmt.Sprintf("no movement from %s for %v while badge worn — possible incapacitation", wearer, now-last),
			})
		}
	}
	return out
}

// QuietCrewDetector watches the crew-wide conversation level and flags
// days when the crew fell unusually silent (the days 11-12 signature: food
// shortage and the mission-control reprimand).
type QuietCrewDetector struct {
	// Window is the sliding evaluation window.
	Window time.Duration
	// MinFrames is the minimum mic frames in a window for a verdict.
	MinFrames int
	// QuietRatio flags a window whose speech fraction is below this ratio
	// of the trailing baseline.
	QuietRatio float64

	frames   []frameObs
	baseline ewma
	lastEval time.Duration
	quietNow bool
}

type frameObs struct {
	at     time.Duration
	speech bool
}

type ewma struct {
	val float64
	ok  bool
}

func (e *ewma) update(x, alpha float64) {
	if !e.ok {
		e.val, e.ok = x, true
		return
	}
	e.val = (1-alpha)*e.val + alpha*x
}

// NewQuietCrewDetector returns a detector with a 2-hour window.
func NewQuietCrewDetector() *QuietCrewDetector {
	return &QuietCrewDetector{
		Window:     2 * time.Hour,
		MinFrames:  60,
		QuietRatio: 0.3,
	}
}

// Name implements Detector.
func (d *QuietCrewDetector) Name() string { return "quiet-crew" }

// Observe implements Detector.
func (d *QuietCrewDetector) Observe(at time.Duration, wearer string, _ store.BadgeID, rec record.Record) []Alert {
	if rec.Kind != record.KindMic || wearer == "" {
		return nil
	}
	speech := rec.SpeechDetected && rec.LoudnessDB >= 60 && rec.SpeechFraction >= 0.2
	d.frames = append(d.frames, frameObs{at: at, speech: speech})
	return nil
}

// Sweep implements Detector.
func (d *QuietCrewDetector) Sweep(now time.Duration) []Alert {
	if now-d.lastEval < d.Window/4 {
		return nil
	}
	d.lastEval = now
	// Trim to window.
	cut := 0
	for cut < len(d.frames) && d.frames[cut].at < now-d.Window {
		cut++
	}
	d.frames = d.frames[cut:]
	if len(d.frames) < d.MinFrames {
		return nil
	}
	speech := 0
	for _, f := range d.frames {
		if f.speech {
			speech++
		}
	}
	frac := float64(speech) / float64(len(d.frames))
	defer d.baseline.update(frac, 0.1)
	if !d.baseline.ok || d.baseline.val < 0.02 {
		return nil
	}
	quiet := frac < d.QuietRatio*d.baseline.val
	if quiet && !d.quietNow {
		d.quietNow = true
		return []Alert{{
			At: now, Severity: Warning, Kind: d.Name(),
			Message: fmt.Sprintf("crew conversation level %.1f%% vs baseline %.1f%% — possible morale issue", 100*frac, 100*d.baseline.val),
		}}
	}
	if !quiet {
		d.quietNow = false
	}
	return nil
}

// BatteryDetector flags low batteries before they strand an astronaut
// without sensing.
type BatteryDetector struct {
	// LowPct triggers the warning.
	LowPct  float64
	alerted map[store.BadgeID]bool
}

// NewBatteryDetector returns a detector triggering below 20%.
func NewBatteryDetector() *BatteryDetector {
	return &BatteryDetector{LowPct: 20, alerted: make(map[store.BadgeID]bool)}
}

// Name implements Detector.
func (d *BatteryDetector) Name() string { return "battery" }

// Observe implements Detector.
func (d *BatteryDetector) Observe(at time.Duration, wearer string, badge store.BadgeID, rec record.Record) []Alert {
	if rec.Kind != record.KindBattery {
		return nil
	}
	if float64(rec.BatteryPct) >= d.LowPct {
		d.alerted[badge] = false
		return nil
	}
	if d.alerted[badge] {
		return nil
	}
	d.alerted[badge] = true
	return []Alert{{
		At: at, Severity: Warning, Kind: d.Name(), Subject: wearer,
		Message: fmt.Sprintf("badge %d battery at %.0f%% — dock it or swap to a backup", badge, rec.BatteryPct),
	}}
}

// Sweep implements Detector.
func (d *BatteryDetector) Sweep(time.Duration) []Alert { return nil }

// HydrationDetector reminds astronauts who have not visited the kitchen
// for hours — the paper's observed pattern of crew absorbed in office work
// who "had to quickly supplement water ... to avoid dehydration", and its
// Section VI urine-processor/smart-mug integration sketch reduced to the
// signal available from the badges.
type HydrationDetector struct {
	// MaxDry is the longest tolerated interval without a kitchen visit.
	MaxDry time.Duration
	// kitchenBeacons are the beacon IDs inside the kitchen.
	kitchenBeacons map[uint16]bool

	lastKitchen map[string]time.Duration
	firstSeen   map[string]time.Duration
	alerted     map[string]bool
}

// NewHydrationDetector builds the detector from the habitat's beacon map.
func NewHydrationDetector(hab *habitat.Habitat, maxDry time.Duration) *HydrationDetector {
	if maxDry <= 0 {
		maxDry = 5 * time.Hour
	}
	kb := make(map[uint16]bool)
	for _, s := range hab.Beacons() {
		if s.Room == habitat.Kitchen {
			kb[uint16(s.ID)] = true
		}
	}
	return &HydrationDetector{
		MaxDry:         maxDry,
		kitchenBeacons: kb,
		lastKitchen:    make(map[string]time.Duration),
		firstSeen:      make(map[string]time.Duration),
		alerted:        make(map[string]bool),
	}
}

// Name implements Detector.
func (d *HydrationDetector) Name() string { return "hydration" }

// Observe implements Detector.
func (d *HydrationDetector) Observe(at time.Duration, wearer string, _ store.BadgeID, rec record.Record) []Alert {
	if wearer == "" || rec.Kind != record.KindBeacon {
		return nil
	}
	if _, ok := d.firstSeen[wearer]; !ok {
		d.firstSeen[wearer] = at
	}
	if d.kitchenBeacons[rec.PeerID] {
		d.lastKitchen[wearer] = at
		d.alerted[wearer] = false
	}
	return nil
}

// Sweep implements Detector.
func (d *HydrationDetector) Sweep(now time.Duration) []Alert {
	var out []Alert
	for wearer, first := range d.firstSeen {
		if d.alerted[wearer] {
			continue
		}
		ref := d.lastKitchen[wearer]
		if ref == 0 {
			ref = first
		}
		if now-ref >= d.MaxDry {
			d.alerted[wearer] = true
			out = append(out, Alert{
				At: now, Severity: Info, Kind: d.Name(), Subject: wearer,
				Message: fmt.Sprintf("%s has not visited the kitchen for %v — hydration reminder", wearer, now-ref),
			})
		}
	}
	return out
}

// WearComplianceDetector nudges astronauts whose badges stay off during
// duty hours — the decline from ~80% to ~50% the paper attributes to the
// badge being a burden in the lab and workshop.
type WearComplianceDetector struct {
	// MaxOff is the longest tolerated continuous unworn span during duty.
	MaxOff time.Duration

	wornSince   map[string]time.Duration
	unwornSince map[string]time.Duration
	alerted     map[string]bool
}

// NewWearComplianceDetector returns a detector with a 90-minute tolerance.
func NewWearComplianceDetector() *WearComplianceDetector {
	return &WearComplianceDetector{
		MaxOff:      90 * time.Minute,
		wornSince:   make(map[string]time.Duration),
		unwornSince: make(map[string]time.Duration),
		alerted:     make(map[string]bool),
	}
}

// Name implements Detector.
func (d *WearComplianceDetector) Name() string { return "wear-compliance" }

// Observe implements Detector.
func (d *WearComplianceDetector) Observe(at time.Duration, wearer string, _ store.BadgeID, rec record.Record) []Alert {
	if wearer == "" || rec.Kind != record.KindWear {
		return nil
	}
	if rec.Worn {
		d.wornSince[wearer] = at
		delete(d.unwornSince, wearer)
		d.alerted[wearer] = false
	} else {
		d.unwornSince[wearer] = at
	}
	return nil
}

// Sweep implements Detector. Overnight docking is not a compliance issue:
// the unworn span must start and end within the same day's duty hours.
func (d *WearComplianceDetector) Sweep(now time.Duration) []Alert {
	var out []Alert
	tod := simtime.TimeOfDay(now)
	if tod < 8*time.Hour || tod >= 22*time.Hour {
		return nil
	}
	for wearer, since := range d.unwornSince {
		if d.alerted[wearer] || now-since < d.MaxOff {
			continue
		}
		if simtime.DayOf(since) != simtime.DayOf(now) {
			continue
		}
		d.alerted[wearer] = true
		out = append(out, Alert{
			At: now, Severity: Info, Kind: d.Name(), Subject: wearer,
			Message: fmt.Sprintf("%s's badge unworn for %v during duty — please put it back on", wearer, now-since),
		})
	}
	return out
}
