package support

import (
	"errors"
	"fmt"
	"time"

	"icares/internal/record"
	"icares/internal/store"
)

// BadgePool manages the redundant badges: ICAres-1 carried six backups "in
// case their assigned ones failed". The paper also notes F in fact reused
// dead C's badge — which broke the one-owner assumption of the analysis —
// so the pool keeps an auditable reassignment log that downstream analyses
// can consume instead of guessing.
type BadgePool struct {
	free     []store.BadgeID
	assigned map[store.BadgeID]string
	log      []Reassignment
}

// Reassignment is one audited badge hand-over.
type Reassignment struct {
	At      time.Duration
	Badge   store.BadgeID
	Wearer  string
	Reason  string
	Release bool // true when the badge returned to the pool
}

// Errors of the pool.
var (
	ErrPoolEmpty    = errors.New("support: no backup badges left")
	ErrNotAssigned  = errors.New("support: badge not assigned")
	ErrBadgeUnknown = errors.New("support: badge not in pool")
)

// NewBadgePool creates a pool with the given spare badges.
func NewBadgePool(spares []store.BadgeID) *BadgePool {
	p := &BadgePool{assigned: make(map[store.BadgeID]string)}
	p.free = append(p.free, spares...)
	return p
}

// Free returns how many spares remain.
func (p *BadgePool) Free() int { return len(p.free) }

// Assign hands the next spare to the wearer, recording the reason (e.g.
// "badge 6 battery failure").
func (p *BadgePool) Assign(at time.Duration, wearer, reason string) (store.BadgeID, error) {
	if len(p.free) == 0 {
		return 0, ErrPoolEmpty
	}
	id := p.free[0]
	p.free = p.free[1:]
	p.assigned[id] = wearer
	p.log = append(p.log, Reassignment{At: at, Badge: id, Wearer: wearer, Reason: reason})
	return id, nil
}

// Release returns a badge to the pool (e.g. after repair of the original).
func (p *BadgePool) Release(at time.Duration, id store.BadgeID, reason string) error {
	wearer, ok := p.assigned[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotAssigned, id)
	}
	delete(p.assigned, id)
	p.free = append(p.free, id)
	p.log = append(p.log, Reassignment{At: at, Badge: id, Wearer: wearer, Reason: reason, Release: true})
	return nil
}

// WearerOf returns the current wearer of an assigned spare.
func (p *BadgePool) WearerOf(id store.BadgeID) (string, bool) {
	w, ok := p.assigned[id]
	return w, ok
}

// Log returns the reassignment audit trail (copy).
func (p *BadgePool) Log() []Reassignment {
	out := make([]Reassignment, len(p.log))
	copy(out, p.log)
	return out
}

// Failover couples the health registry with the pool: when an assigned
// badge goes silent, it allocates a spare for the wearer and raises an
// alert. It implements Detector so it can run inside the daemon.
type Failover struct {
	// MaxSilence is how long a duty badge may be unheard before failover.
	MaxSilence time.Duration

	health   *HealthRegistry
	pool     *BadgePool
	wearerOf func(store.BadgeID) (string, bool)
	replaced map[store.BadgeID]bool
}

// NewFailover builds the failover controller. wearerOf maps a badge to its
// current wearer (may change over the mission).
func NewFailover(health *HealthRegistry, pool *BadgePool, wearerOf func(store.BadgeID) (string, bool)) *Failover {
	return &Failover{
		MaxSilence: 30 * time.Minute,
		health:     health,
		pool:       pool,
		wearerOf:   wearerOf,
		replaced:   make(map[store.BadgeID]bool),
	}
}

// Name implements Detector.
func (f *Failover) Name() string { return "failover" }

// Observe implements Detector (no per-record work; liveness is tracked by
// the daemon's health registry).
func (f *Failover) Observe(time.Duration, string, store.BadgeID, record.Record) []Alert {
	return nil
}

// Sweep implements Detector: any stale duty badge triggers a replacement.
func (f *Failover) Sweep(now time.Duration) []Alert {
	var out []Alert
	for _, id := range f.health.Stale(now, f.MaxSilence) {
		if f.replaced[id] {
			continue
		}
		wearer, onDuty := f.wearerOf(id)
		if !onDuty {
			continue
		}
		f.replaced[id] = true
		spare, err := f.pool.Assign(now, wearer, fmt.Sprintf("badge %d silent for over %v", id, f.MaxSilence))
		if err != nil {
			out = append(out, Alert{
				At: now, Severity: Critical, Kind: f.Name(), Subject: wearer,
				Message: fmt.Sprintf("badge %d silent and no spares left: %v", id, err),
			})
			continue
		}
		out = append(out, Alert{
			At: now, Severity: Warning, Kind: f.Name(), Subject: wearer,
			Message: fmt.Sprintf("badge %d presumed failed; issue backup badge %d to %s", id, spare, wearer),
		})
	}
	return out
}
