package support

import (
	"container/heap"
	"time"

	"icares/internal/record"
	"icares/internal/simtime"
	"icares/internal/store"
)

// Replayer streams a recorded dataset through a daemon in global timestamp
// order, as if the records were arriving live — the bridge between the
// offline datasets of this repository and the real-time support system. In
// a deployment the same Daemon would be fed by the radio ingest path
// instead.
type Replayer struct {
	daemon *Daemon
	ds     *store.Dataset
	// WearerOf maps a badge and mission day to its wearer ("" if none).
	WearerOf func(id store.BadgeID, day int) string
	// Gate optionally filters the stream: return false to withhold a
	// record from the daemon, modelling transport loss between badge and
	// gateway (e.g. faultplan.Plan.ReplayGate). Nil passes everything.
	Gate func(id store.BadgeID, at time.Duration) bool

	withheld int
}

// NewReplayer builds a replayer over a dataset.
func NewReplayer(d *Daemon, ds *store.Dataset, wearerOf func(store.BadgeID, int) string) *Replayer {
	return &Replayer{daemon: d, ds: ds, WearerOf: wearerOf}
}

// cursor walks one badge's series.
type cursor struct {
	id   store.BadgeID
	recs []record.Record
	pos  int
}

type cursorHeap []*cursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	return h[i].recs[h[i].pos].Local < h[j].recs[h[j].pos].Local
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any) {
	c, ok := x.(*cursor)
	if ok {
		*h = append(*h, c)
	}
}
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Run replays records with timestamps in [from, to), returning how many
// were ingested.
func (r *Replayer) Run(from, to time.Duration) int {
	var h cursorHeap
	for _, id := range r.ds.Badges() {
		recs := r.ds.Series(id).Range(from, to)
		if len(recs) > 0 {
			h = append(h, &cursor{id: id, recs: recs})
		}
	}
	heap.Init(&h)
	n := 0
	for h.Len() > 0 {
		c, ok := heap.Pop(&h).(*cursor)
		if !ok {
			break
		}
		rec := c.recs[c.pos]
		if r.Gate == nil || r.Gate(c.id, rec.Local) {
			wearer := ""
			if r.WearerOf != nil {
				wearer = r.WearerOf(c.id, simtime.DayOf(rec.Local))
			}
			r.daemon.Ingest(rec.Local, wearer, c.id, rec)
			n++
		} else {
			r.withheld++
		}
		c.pos++
		if c.pos < len(c.recs) {
			heap.Push(&h, c)
		}
	}
	return n
}

// Withheld returns how many records the gate has dropped so far.
func (r *Replayer) Withheld() int { return r.withheld }
