package support

import (
	"fmt"
	"sort"
	"time"
)

// Rescheduling advisor — the paper's everyday-duty example for the support
// system: "a mechanism detecting fatigue or distraction among the crew and
// suggesting how to reschedule the tasks". The advisor never mutates the
// plan itself (a significant change goes through the Council); it produces
// suggestions for the crew to act on.

// TaskSlot is one entry of the mission's 30-minute plan.
type TaskSlot struct {
	Astronaut string
	Start     time.Duration
	Length    time.Duration
	Label     string
	// Demanding marks tasks unsuitable for a fatigued astronaut (EVAs,
	// precision lab work).
	Demanding bool
}

// Suggestion is one proposed plan adjustment.
type Suggestion struct {
	// Reason explains the trigger.
	Reason string
	// Swap proposes exchanging the assignees of two concurrent slots;
	// Rest proposes converting the slot into a rest break. Exactly one is
	// set.
	Swap *[2]TaskSlot
	Rest *TaskSlot
}

// String renders the suggestion.
func (s Suggestion) String() string {
	switch {
	case s.Swap != nil:
		return fmt.Sprintf("swap %q (%s) with %q (%s): %s",
			s.Swap[0].Label, s.Swap[0].Astronaut,
			s.Swap[1].Label, s.Swap[1].Astronaut, s.Reason)
	case s.Rest != nil:
		return fmt.Sprintf("convert %q (%s) into a rest break: %s",
			s.Rest.Label, s.Rest.Astronaut, s.Reason)
	default:
		return s.Reason
	}
}

// FatiguedFrom derives a fatigue set from the alert log: astronauts with a
// critical inactivity alert or repeated (>= 2) warnings of any kind within
// the trailing window.
func FatiguedFrom(alerts []Alert, now, window time.Duration) map[string]bool {
	counts := make(map[string]int)
	out := make(map[string]bool)
	for _, a := range alerts {
		if a.Subject == "" || a.At < now-window || a.At > now {
			continue
		}
		switch {
		case a.Severity == Critical:
			out[a.Subject] = true
		case a.Severity == Warning:
			counts[a.Subject]++
			if counts[a.Subject] >= 2 {
				out[a.Subject] = true
			}
		}
	}
	return out
}

// SuggestReschedule inspects the future plan: every demanding slot
// assigned to a fatigued astronaut gets either a swap with a concurrent
// non-demanding slot of a rested astronaut, or — when no swap partner
// exists — a rest conversion. Suggestions are ordered by slot start.
func SuggestReschedule(plan []TaskSlot, fatigued map[string]bool, now time.Duration) []Suggestion {
	future := make([]TaskSlot, 0, len(plan))
	for _, s := range plan {
		if s.Start >= now {
			future = append(future, s)
		}
	}
	sort.Slice(future, func(i, j int) bool {
		if future[i].Start != future[j].Start {
			return future[i].Start < future[j].Start
		}
		return future[i].Astronaut < future[j].Astronaut
	})

	swapped := make(map[int]bool) // indexes already consumed as partners
	var out []Suggestion
	for i, s := range future {
		if !s.Demanding || !fatigued[s.Astronaut] {
			continue
		}
		reason := fmt.Sprintf("%s shows fatigue signals and %q is demanding", s.Astronaut, s.Label)
		partner := -1
		for j, c := range future {
			if j == i || swapped[j] || c.Start != s.Start {
				continue
			}
			if c.Demanding || fatigued[c.Astronaut] {
				continue
			}
			partner = j
			break
		}
		if partner >= 0 {
			swapped[partner] = true
			pair := [2]TaskSlot{s, future[partner]}
			out = append(out, Suggestion{Reason: reason, Swap: &pair})
			continue
		}
		slot := s
		out = append(out, Suggestion{Reason: reason, Rest: &slot})
	}
	return out
}
