package support

import (
	"strings"
	"testing"
	"time"
)

func slot(who string, startH int, label string, demanding bool) TaskSlot {
	return TaskSlot{
		Astronaut: who,
		Start:     time.Duration(startH) * time.Hour,
		Length:    30 * time.Minute,
		Label:     label,
		Demanding: demanding,
	}
}

func TestFatiguedFrom(t *testing.T) {
	now := 10 * time.Hour
	alerts := []Alert{
		{At: 9 * time.Hour, Severity: Critical, Kind: "inactivity", Subject: "A"},
		{At: 9 * time.Hour, Severity: Warning, Kind: "battery", Subject: "B"},
		{At: 9*time.Hour + 30*time.Minute, Severity: Warning, Kind: "quiet-crew", Subject: "B"},
		{At: 9 * time.Hour, Severity: Warning, Kind: "battery", Subject: "C"},
		{At: 2 * time.Hour, Severity: Critical, Kind: "inactivity", Subject: "D"}, // outside window
		{At: 9 * time.Hour, Severity: Warning, Kind: "quiet-crew"},                // crew-wide, no subject
	}
	got := FatiguedFrom(alerts, now, 4*time.Hour)
	if !got["A"] {
		t.Error("A (critical) not fatigued")
	}
	if !got["B"] {
		t.Error("B (two warnings) not fatigued")
	}
	if got["C"] {
		t.Error("C (one warning) fatigued")
	}
	if got["D"] {
		t.Error("D (stale alert) fatigued")
	}
}

func TestSuggestRescheduleSwap(t *testing.T) {
	plan := []TaskSlot{
		slot("A", 14, "EVA rover test", true),
		slot("B", 14, "inventory", false),
		slot("A", 16, "paperwork", false),
	}
	sugs := SuggestReschedule(plan, map[string]bool{"A": true}, 13*time.Hour)
	if len(sugs) != 1 {
		t.Fatalf("suggestions = %v", sugs)
	}
	s := sugs[0]
	if s.Swap == nil {
		t.Fatalf("expected a swap: %v", s)
	}
	if s.Swap[0].Astronaut != "A" || s.Swap[1].Astronaut != "B" {
		t.Errorf("swap = %v", s)
	}
	if !strings.Contains(s.String(), "swap") {
		t.Errorf("render = %q", s.String())
	}
}

func TestSuggestRescheduleRestWhenNoPartner(t *testing.T) {
	plan := []TaskSlot{
		slot("A", 14, "EVA", true),
		slot("B", 14, "precision assay", true), // demanding: not a partner
	}
	sugs := SuggestReschedule(plan, map[string]bool{"A": true}, 0)
	if len(sugs) != 1 || sugs[0].Rest == nil {
		t.Fatalf("suggestions = %v", sugs)
	}
	if !strings.Contains(sugs[0].String(), "rest break") {
		t.Errorf("render = %q", sugs[0].String())
	}
}

func TestSuggestRescheduleIgnoresPastAndRested(t *testing.T) {
	plan := []TaskSlot{
		slot("A", 9, "past EVA", true),     // in the past
		slot("B", 14, "future EVA", true),  // B not fatigued
		slot("A", 14, "light task", false), // not demanding
	}
	if sugs := SuggestReschedule(plan, map[string]bool{"A": true}, 10*time.Hour); len(sugs) != 0 {
		t.Errorf("suggestions = %v", sugs)
	}
}

func TestSuggestReschedulePartnerNotReused(t *testing.T) {
	plan := []TaskSlot{
		slot("A", 14, "EVA-1", true),
		slot("B", 14, "EVA-2", true),
		slot("C", 14, "inventory", false),
	}
	fatigued := map[string]bool{"A": true, "B": true}
	sugs := SuggestReschedule(plan, fatigued, 0)
	if len(sugs) != 2 {
		t.Fatalf("suggestions = %d", len(sugs))
	}
	// Only one of the two can swap with C; the other must rest.
	swaps, rests := 0, 0
	for _, s := range sugs {
		if s.Swap != nil {
			swaps++
			if s.Swap[1].Astronaut != "C" {
				t.Errorf("swap partner = %v", s.Swap[1].Astronaut)
			}
		}
		if s.Rest != nil {
			rests++
		}
	}
	if swaps != 1 || rests != 1 {
		t.Errorf("swaps=%d rests=%d", swaps, rests)
	}
}
