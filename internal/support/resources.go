package support

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Resource accounting (the paper's Section VI): "Another aspect is
// optimizing utilization of scarce resources, such as power, water, oxygen,
// food, especially during critical periods." The Ledger tracks stocks and
// consumption rates and projects depletion; the day-11 food shortage of
// ICAres-1 (rations under 500 kcal/day) is the scenario it exists for.

// Resource identifies a tracked consumable.
type Resource string

// The life-critical consumables of a habitat.
const (
	Water  Resource = "water"
	Oxygen Resource = "oxygen"
	Food   Resource = "food"
	Power  Resource = "power"
)

// Stock is the state of one resource.
type Stock struct {
	// Level is the current amount, in the resource's unit (liters, kg,
	// kWh, ...).
	Level float64
	// ReservedMin is the emergency floor that must never be planned into
	// consumption.
	ReservedMin float64
}

// Ledger tracks resource stocks over mission time.
type Ledger struct {
	stocks map[Resource]Stock
	// consumption history for rate estimation
	history map[Resource][]consumption
	now     time.Duration
}

type consumption struct {
	at     time.Duration
	amount float64
}

// Errors of the ledger.
var (
	ErrUnknownResource = errors.New("support: unknown resource")
	ErrOverdraw        = errors.New("support: consumption exceeds stock")
)

// NewLedger creates a ledger with the given initial stocks.
func NewLedger(initial map[Resource]Stock) *Ledger {
	l := &Ledger{
		stocks:  make(map[Resource]Stock, len(initial)),
		history: make(map[Resource][]consumption),
	}
	for r, s := range initial {
		l.stocks[r] = s
	}
	return l
}

// Level returns the current stock level.
func (l *Ledger) Level(r Resource) (float64, error) {
	s, ok := l.stocks[r]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownResource, r)
	}
	return s.Level, nil
}

// Consume records usage at mission time now. Consumption below the
// emergency floor is rejected.
func (l *Ledger) Consume(now time.Duration, r Resource, amount float64) error {
	s, ok := l.stocks[r]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownResource, r)
	}
	if amount < 0 {
		return fmt.Errorf("support: negative consumption of %s", r)
	}
	if s.Level-amount < s.ReservedMin {
		return fmt.Errorf("%w: %s %.2f available above floor, %.2f requested",
			ErrOverdraw, r, s.Level-s.ReservedMin, amount)
	}
	s.Level -= amount
	l.stocks[r] = s
	l.history[r] = append(l.history[r], consumption{at: now, amount: amount})
	if now > l.now {
		l.now = now
	}
	return nil
}

// Resupply adds stock (a lander, recycling output, solar charge).
func (l *Ledger) Resupply(now time.Duration, r Resource, amount float64) error {
	s, ok := l.stocks[r]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownResource, r)
	}
	s.Level += amount
	l.stocks[r] = s
	if now > l.now {
		l.now = now
	}
	return nil
}

// RatePerDay estimates the consumption rate from the trailing window.
func (l *Ledger) RatePerDay(r Resource, window time.Duration) float64 {
	hist := l.history[r]
	if len(hist) == 0 || window <= 0 {
		return 0
	}
	cutoff := l.now - window
	var total float64
	first := l.now
	for _, c := range hist {
		if c.at < cutoff {
			continue
		}
		total += c.amount
		if c.at < first {
			first = c.at
		}
	}
	span := l.now - first
	if span < window/4 {
		span = window / 4 // avoid wild extrapolation from a short burst
	}
	if span <= 0 {
		return 0
	}
	return total / span.Hours() * 24
}

// Projection is a depletion forecast for one resource.
type Projection struct {
	Resource   Resource
	Level      float64
	RatePerDay float64
	// DaysLeft until the emergency floor at the current rate
	// (+Inf when the rate is zero).
	DaysLeft float64
}

// Forecast projects every resource using the trailing window for rates,
// sorted by urgency.
func (l *Ledger) Forecast(window time.Duration) []Projection {
	out := make([]Projection, 0, len(l.stocks))
	for r, s := range l.stocks {
		rate := l.RatePerDay(r, window)
		days := math.Inf(1)
		if rate > 0 {
			days = (s.Level - s.ReservedMin) / rate
		}
		out = append(out, Projection{
			Resource: r, Level: s.Level, RatePerDay: rate, DaysLeft: days,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DaysLeft != out[j].DaysLeft {
			return out[i].DaysLeft < out[j].DaysLeft
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}

// ResourceWatch turns ledger forecasts into support alerts: a warning when
// a resource is projected to hit its floor before the horizon, critical
// when within half of it.
type ResourceWatch struct {
	Ledger *Ledger
	// Horizon is the planning horizon (e.g. time until resupply or
	// mission end).
	Horizon time.Duration
	// Window is the rate-estimation window.
	Window time.Duration

	alerted map[Resource]Severity
}

// NewResourceWatch builds a watch with a 2-day rate window.
func NewResourceWatch(l *Ledger, horizon time.Duration) *ResourceWatch {
	return &ResourceWatch{
		Ledger:  l,
		Horizon: horizon,
		Window:  48 * time.Hour,
		alerted: make(map[Resource]Severity),
	}
}

// Check evaluates the forecast at mission time now and returns new alerts.
// Each resource alerts once per severity level until it recovers.
func (w *ResourceWatch) Check(now time.Duration) []Alert {
	var out []Alert
	horizonDays := w.Horizon.Hours() / 24
	for _, p := range w.Ledger.Forecast(w.Window) {
		var sev Severity
		switch {
		case p.DaysLeft <= horizonDays/2:
			sev = Critical
		case p.DaysLeft <= horizonDays:
			sev = Warning
		default:
			delete(w.alerted, p.Resource)
			continue
		}
		if w.alerted[p.Resource] >= sev {
			continue
		}
		w.alerted[p.Resource] = sev
		out = append(out, Alert{
			At: now, Severity: sev, Kind: "resource",
			Subject: string(p.Resource),
			Message: fmt.Sprintf("%s projected to reach its emergency floor in %.1f days (level %.1f, rate %.1f/day)",
				p.Resource, p.DaysLeft, p.Level, p.RatePerDay),
		})
	}
	return out
}
