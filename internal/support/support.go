// Package support implements the mission support system the paper's
// Section VI calls for: an autonomous, habitat-local distributed service
// that ingests the sensing streams in real time and gives the crew
// immediate feedback — "informing them about relevant phenomena and
// allowing for reacting appropriately" — instead of waiting for offline
// analysis or a 20-minute-away mission control.
//
// The package provides:
//
//   - Daemon: streaming ingestion of badge records with pluggable anomaly
//     detectors (inactivity, crew-wide quietness, wear compliance, battery,
//     hydration) and an alert bus;
//   - HealthRegistry and BadgePool: device monitoring and failover to the
//     six backup badges;
//   - Council: the consensus-approval protocol for significant system
//     changes (crew majority plus delayed mission-control assent);
//   - PrivacyGuard: per-astronaut sensor-suppression windows ("temporarily
//     disable some functionalities in privacy-sensitive situations").
package support

import (
	"fmt"
	"time"

	"icares/internal/record"
	"icares/internal/store"
	"icares/internal/telemetry"
)

// Severity grades an alert.
type Severity int

// Severity levels.
const (
	Info Severity = iota + 1
	Warning
	Critical
)

// String returns the severity label.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Alert is one support-system finding.
type Alert struct {
	At       time.Duration
	Severity Severity
	// Kind is a stable machine-readable category (e.g. "inactivity").
	Kind string
	// Subject is the astronaut or badge concerned ("" for crew-wide).
	Subject string
	Message string
}

// Detector consumes the stream and raises alerts. Observe is called for
// every ingested record; Sweep runs on the daemon's periodic tick for
// time-based conditions.
type Detector interface {
	Name() string
	Observe(at time.Duration, wearer string, badge store.BadgeID, rec record.Record) []Alert
	Sweep(now time.Duration) []Alert
}

// Daemon is the streaming support service.
type Daemon struct {
	detectors []Detector
	privacy   *PrivacyGuard
	health    *HealthRegistry
	analytics *Analytics

	alerts []Alert
	subs   []func(Alert)

	// SweepEvery is the periodic evaluation interval.
	SweepEvery time.Duration
	lastSweep  time.Duration

	// Telemetry handles (nil until Instrument; nil handles are no-ops).
	reg                  *telemetry.Registry
	cIngested, cScrubbed *telemetry.Counter
	cSweeps              *telemetry.Counter
	cAlertsByKind        map[string]*telemetry.Counter
	gDetectors, gKnown   *telemetry.Gauge

	// Flight recorder (nil until AttachJournal).
	journal *telemetry.Journal
}

// NewDaemon creates a daemon with no detectors registered.
func NewDaemon() *Daemon {
	return &Daemon{
		privacy:    NewPrivacyGuard(),
		health:     NewHealthRegistry(),
		SweepEvery: time.Minute,
	}
}

// Register adds a detector.
func (d *Daemon) Register(det Detector) {
	d.detectors = append(d.detectors, det)
	d.gDetectors.Set(float64(len(d.detectors)))
}

// Instrument mirrors the daemon's ingestion and alert counters into reg:
//
//	support_records_ingested_total, support_privacy_scrubbed_total,
//	support_sweeps_total, support_alerts_total{kind=...},
//	support_detectors, support_known_badges
//
// Call it before ingestion starts; like the daemon itself, instrumentation
// assumes a single ingesting goroutine.
func (d *Daemon) Instrument(reg *telemetry.Registry) {
	d.reg = reg
	d.cIngested = reg.Counter("support_records_ingested_total")
	d.cScrubbed = reg.Counter("support_privacy_scrubbed_total")
	d.cSweeps = reg.Counter("support_sweeps_total")
	d.cAlertsByKind = make(map[string]*telemetry.Counter)
	d.gDetectors = reg.Gauge("support_detectors")
	d.gDetectors.Set(float64(len(d.detectors)))
	d.gKnown = reg.Gauge("support_known_badges")
}

// AttachAnalytics routes every ingested record (post privacy scrub) into
// the live sociometric analytics. Attach before ingestion starts.
func (d *Daemon) AttachAnalytics(a *Analytics) { d.analytics = a }

// AttachJournal mirrors every raised alert into a flight recorder, so the
// black box interleaves crew-facing alerts with the system-plane events
// around them. Attach before ingestion starts.
func (d *Daemon) AttachJournal(j *telemetry.Journal) { d.journal = j }

// journalSeverity maps alert severities onto the journal's scale.
func journalSeverity(s Severity) telemetry.EventSeverity {
	switch s {
	case Critical:
		return telemetry.SevError
	case Warning:
		return telemetry.SevWarn
	default:
		return telemetry.SevInfo
	}
}

// Analytics returns the attached live analytics, nil if none.
func (d *Daemon) Analytics() *Analytics { return d.analytics }

// Privacy returns the daemon's privacy guard.
func (d *Daemon) Privacy() *PrivacyGuard { return d.privacy }

// Health returns the daemon's device-health registry.
func (d *Daemon) Health() *HealthRegistry { return d.health }

// OnAlert subscribes to alerts as they are raised.
func (d *Daemon) OnAlert(fn func(Alert)) { d.subs = append(d.subs, fn) }

// Alerts returns all alerts raised so far (copy).
func (d *Daemon) Alerts() []Alert {
	out := make([]Alert, len(d.alerts))
	copy(out, d.alerts)
	return out
}

// AlertsOfKind filters the alert log.
func (d *Daemon) AlertsOfKind(kind string) []Alert {
	var out []Alert
	for _, a := range d.alerts {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

func (d *Daemon) raise(alerts []Alert) {
	for _, a := range alerts {
		d.alerts = append(d.alerts, a)
		if d.reg != nil {
			c, ok := d.cAlertsByKind[a.Kind]
			if !ok {
				c = d.reg.Counter("support_alerts_total", telemetry.L("kind", a.Kind))
				d.cAlertsByKind[a.Kind] = c
			}
			c.Inc()
		}
		d.journal.Emit(a.At, journalSeverity(a.Severity), "support", "alert", a.Message,
			telemetry.F("alert_kind", a.Kind), telemetry.F("subject", a.Subject))
		for _, fn := range d.subs {
			fn(a)
		}
	}
}

// Ingest feeds one record into the pipeline. Records inside the wearer's
// privacy windows are dropped for privacy-sensitive kinds (mic, IR) before
// any detector sees them; movement and device-health kinds still flow, as
// safety monitoring must survive privacy mode.
func (d *Daemon) Ingest(at time.Duration, wearer string, badge store.BadgeID, rec record.Record) {
	d.health.Seen(badge, at)
	d.gKnown.Set(float64(len(d.health.lastSeen)))
	d.cIngested.Inc()
	if d.privacy.Suppressed(wearer, at) && privacySensitive(rec.Kind) {
		d.cScrubbed.Inc()
		return
	}
	if d.analytics != nil {
		d.analytics.Ingest(badge, rec)
	}
	for _, det := range d.detectors {
		d.raise(det.Observe(at, wearer, badge, rec))
	}
	if at-d.lastSweep >= d.SweepEvery {
		d.lastSweep = at
		d.Sweep(at)
	}
}

// Sweep runs every detector's periodic evaluation.
func (d *Daemon) Sweep(now time.Duration) {
	d.cSweeps.Inc()
	for _, det := range d.detectors {
		d.raise(det.Sweep(now))
	}
}

func privacySensitive(k record.Kind) bool {
	switch k {
	case record.KindMic, record.KindIR:
		return true
	default:
		return false
	}
}

// PrivacyGuard tracks per-astronaut sensor-suppression windows.
type PrivacyGuard struct {
	windows map[string]record.RangeSet
}

// NewPrivacyGuard creates an empty guard.
func NewPrivacyGuard() *PrivacyGuard {
	return &PrivacyGuard{windows: make(map[string]record.RangeSet)}
}

// Suppress disables privacy-sensitive sensing for the astronaut during
// [from, to).
func (g *PrivacyGuard) Suppress(name string, from, to time.Duration) {
	g.windows[name] = append(g.windows[name], record.TimeRange{From: from, To: to}).Normalize()
}

// Suppressed reports whether the astronaut's privacy mode covers t.
func (g *PrivacyGuard) Suppressed(name string, t time.Duration) bool {
	return g.windows[name].Contains(t)
}

// Windows returns the astronaut's suppression windows.
func (g *PrivacyGuard) Windows(name string) record.RangeSet {
	return append(record.RangeSet{}, g.windows[name]...)
}

// HealthRegistry tracks device liveness.
type HealthRegistry struct {
	lastSeen map[store.BadgeID]time.Duration
}

// NewHealthRegistry creates an empty registry.
func NewHealthRegistry() *HealthRegistry {
	return &HealthRegistry{lastSeen: make(map[store.BadgeID]time.Duration)}
}

// Seen records a sign of life from a badge.
func (h *HealthRegistry) Seen(id store.BadgeID, at time.Duration) {
	if cur, ok := h.lastSeen[id]; !ok || at > cur {
		h.lastSeen[id] = at
	}
}

// LastSeen returns the badge's last sign of life.
func (h *HealthRegistry) LastSeen(id store.BadgeID) (time.Duration, bool) {
	at, ok := h.lastSeen[id]
	return at, ok
}

// Stale returns the known badges not heard from within maxAge of now.
func (h *HealthRegistry) Stale(now, maxAge time.Duration) []store.BadgeID {
	var out []store.BadgeID
	for id, at := range h.lastSeen {
		if now-at > maxAge {
			out = append(out, id)
		}
	}
	sortBadgeIDs(out)
	return out
}

func sortBadgeIDs(ids []store.BadgeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
