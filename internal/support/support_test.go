package support

import (
	"errors"
	"testing"
	"time"

	"icares/internal/habitat"
	"icares/internal/record"
	"icares/internal/store"
	"icares/internal/uplink"
)

func accelRec(at time.Duration, dev int16) record.Record {
	return record.Record{Local: at, Kind: record.KindAccel, AX: dev, AY: 0, AZ: 1000}
}

func wearRec(at time.Duration, worn bool) record.Record {
	return record.Record{Local: at, Kind: record.KindWear, Worn: worn}
}

func TestInactivityDetector(t *testing.T) {
	d := NewDaemon()
	det := NewInactivityDetector()
	d.Register(det)
	d.Ingest(0, "A", 1, wearRec(0, true))
	// Movement for 10 minutes, then stillness.
	for at := time.Duration(0); at < 10*time.Minute; at += 10 * time.Second {
		d.Ingest(at, "A", 1, accelRec(at, 200))
	}
	for at := 10 * time.Minute; at < 50*time.Minute; at += 10 * time.Second {
		d.Ingest(at, "A", 1, accelRec(at, 3))
	}
	alerts := d.AlertsOfKind("inactivity")
	if len(alerts) != 1 {
		t.Fatalf("inactivity alerts = %d (%v)", len(alerts), alerts)
	}
	if alerts[0].Severity != Critical || alerts[0].Subject != "A" {
		t.Errorf("alert = %+v", alerts[0])
	}
	// Movement resumes: a new stillness period can alert again.
	d.Ingest(50*time.Minute, "A", 1, accelRec(50*time.Minute, 200))
	for at := 50 * time.Minute; at < 90*time.Minute; at += 10 * time.Second {
		d.Ingest(at, "A", 1, accelRec(at, 3))
	}
	if got := len(d.AlertsOfKind("inactivity")); got != 2 {
		t.Errorf("alerts after recovery = %d", got)
	}
}

func TestInactivityIgnoresUnwornBadge(t *testing.T) {
	d := NewDaemon()
	d.Register(NewInactivityDetector())
	d.Ingest(0, "A", 1, wearRec(0, false))
	for at := time.Duration(0); at < 2*time.Hour; at += 10 * time.Second {
		d.Ingest(at, "A", 1, accelRec(at, 1))
	}
	if got := len(d.AlertsOfKind("inactivity")); got != 0 {
		t.Errorf("alerts for unworn badge = %d", got)
	}
}

func TestQuietCrewDetector(t *testing.T) {
	d := NewDaemon()
	d.Register(NewQuietCrewDetector())
	mic := func(at time.Duration, speech bool) record.Record {
		r := record.Record{Local: at, Kind: record.KindMic}
		if speech {
			r.SpeechDetected = true
			r.LoudnessDB = 68
			r.SpeechFraction = 0.5
		} else {
			r.LoudnessDB = 35
		}
		return r
	}
	// 6 hours of lively conversation (~40% speech).
	at := time.Duration(0)
	i := 0
	for ; at < 6*time.Hour; at += 15 * time.Second {
		d.Ingest(at, "A", 1, mic(at, i%5 < 2))
		i++
	}
	if got := len(d.AlertsOfKind("quiet-crew")); got != 0 {
		t.Fatalf("alerts during lively phase = %d: %v", got, d.AlertsOfKind("quiet-crew"))
	}
	// Sudden silence (the day-11 signature).
	for ; at < 12*time.Hour; at += 15 * time.Second {
		d.Ingest(at, "A", 1, mic(at, false))
	}
	if got := len(d.AlertsOfKind("quiet-crew")); got == 0 {
		t.Error("silence never flagged")
	}
}

func TestBatteryDetector(t *testing.T) {
	d := NewDaemon()
	d.Register(NewBatteryDetector())
	bat := func(at time.Duration, pct float32) record.Record {
		return record.Record{Local: at, Kind: record.KindBattery, BatteryPct: pct}
	}
	d.Ingest(0, "B", 2, bat(0, 80))
	d.Ingest(time.Hour, "B", 2, bat(time.Hour, 15))
	d.Ingest(2*time.Hour, "B", 2, bat(2*time.Hour, 12)) // no duplicate alert
	alerts := d.AlertsOfKind("battery")
	if len(alerts) != 1 {
		t.Fatalf("battery alerts = %d", len(alerts))
	}
	// Recharged, then low again: alerts again.
	d.Ingest(3*time.Hour, "B", 2, bat(3*time.Hour, 90))
	d.Ingest(4*time.Hour, "B", 2, bat(4*time.Hour, 10))
	if got := len(d.AlertsOfKind("battery")); got != 2 {
		t.Errorf("battery alerts after recharge = %d", got)
	}
}

func TestHydrationDetector(t *testing.T) {
	hab := habitat.Standard()
	var kitchenBeacon, officeBeacon uint16
	for _, s := range hab.Beacons() {
		if s.Room == habitat.Kitchen && kitchenBeacon == 0 {
			kitchenBeacon = uint16(s.ID)
		}
		if s.Room == habitat.Office && officeBeacon == 0 {
			officeBeacon = uint16(s.ID)
		}
	}
	d := NewDaemon()
	d.Register(NewHydrationDetector(hab, 3*time.Hour))
	obs := func(at time.Duration, beacon uint16) record.Record {
		return record.Record{Local: at, Kind: record.KindBeacon, PeerID: beacon, RSSI: -60}
	}
	// A visits the kitchen at t=0, then stays in the office for 4 h.
	d.Ingest(0, "A", 1, obs(0, kitchenBeacon))
	for at := 15 * time.Second; at < 4*time.Hour; at += 15 * time.Second {
		d.Ingest(at, "A", 1, obs(at, officeBeacon))
	}
	alerts := d.AlertsOfKind("hydration")
	if len(alerts) != 1 {
		t.Fatalf("hydration alerts = %d", len(alerts))
	}
	if alerts[0].Subject != "A" || alerts[0].Severity != Info {
		t.Errorf("alert = %+v", alerts[0])
	}
}

func TestWearComplianceDetector(t *testing.T) {
	d := NewDaemon()
	d.Register(NewWearComplianceDetector())
	base := 9 * time.Hour // duty hours
	d.Ingest(base, "E", 5, wearRec(base, true))
	d.Ingest(base+time.Hour, "E", 5, wearRec(base+time.Hour, false))
	// Ticks to trigger sweeps while unworn.
	for at := base + time.Hour; at < base+4*time.Hour; at += time.Minute {
		d.Ingest(at, "E", 5, record.Record{Local: at, Kind: record.KindEnv})
	}
	alerts := d.AlertsOfKind("wear-compliance")
	if len(alerts) != 1 {
		t.Fatalf("compliance alerts = %d", len(alerts))
	}
}

func TestWearComplianceIgnoresOvernightDock(t *testing.T) {
	d := NewDaemon()
	d.Register(NewWearComplianceDetector())
	// Badge comes off at 22:00 (dock) and the daemon keeps sweeping
	// through the night and next morning: no nagging.
	off := 22 * time.Hour
	d.Ingest(off, "E", 5, wearRec(off, false))
	for at := off; at < off+11*time.Hour; at += 10 * time.Minute {
		d.Ingest(at, "E", 5, record.Record{Local: at, Kind: record.KindEnv})
	}
	if got := len(d.AlertsOfKind("wear-compliance")); got != 0 {
		t.Errorf("overnight dock alerts = %d", got)
	}
}

func TestPrivacyGuardSuppressesMicAndIR(t *testing.T) {
	d := NewDaemon()
	det := NewQuietCrewDetector()
	d.Register(det)
	d.Privacy().Suppress("A", 0, time.Hour)
	mic := record.Record{Local: time.Minute, Kind: record.KindMic, SpeechDetected: true, LoudnessDB: 70, SpeechFraction: 0.5}
	d.Ingest(time.Minute, "A", 1, mic)
	if len(det.frames) != 0 {
		t.Error("suppressed mic frame reached a detector")
	}
	// Movement records still flow (safety).
	inact := NewInactivityDetector()
	d.Register(inact)
	d.Ingest(2*time.Minute, "A", 1, wearRec(2*time.Minute, true))
	if !inact.worn["A"] {
		t.Error("wear record blocked by privacy window")
	}
	// Outside the window, mic flows again.
	mic.Local = 2 * time.Hour
	d.Ingest(2*time.Hour, "A", 1, mic)
	if len(det.frames) != 1 {
		t.Error("mic frame outside window suppressed")
	}
	if got := d.Privacy().Windows("A").Total(); got != time.Hour {
		t.Errorf("windows total = %v", got)
	}
}

func TestHealthRegistry(t *testing.T) {
	h := NewHealthRegistry()
	h.Seen(1, time.Minute)
	h.Seen(2, 2*time.Minute)
	h.Seen(1, 30*time.Second) // older: ignored
	if at, ok := h.LastSeen(1); !ok || at != time.Minute {
		t.Errorf("last seen = %v, %v", at, ok)
	}
	stale := h.Stale(40*time.Minute, 30*time.Minute)
	if len(stale) != 2 {
		t.Fatalf("stale = %v", stale)
	}
	if got := h.Stale(10*time.Minute, 30*time.Minute); len(got) != 0 {
		t.Errorf("fresh badges stale: %v", got)
	}
}

func TestBadgePoolAssignRelease(t *testing.T) {
	p := NewBadgePool([]store.BadgeID{8, 9})
	if p.Free() != 2 {
		t.Fatalf("free = %d", p.Free())
	}
	id, err := p.Assign(time.Hour, "F", "badge 6 failed")
	if err != nil || id != 8 {
		t.Fatalf("assign = %d, %v", id, err)
	}
	if w, ok := p.WearerOf(8); !ok || w != "F" {
		t.Errorf("wearer = %q, %v", w, ok)
	}
	if _, err := p.Assign(time.Hour, "D", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Assign(time.Hour, "E", "x"); !errors.Is(err, ErrPoolEmpty) {
		t.Errorf("empty pool: %v", err)
	}
	if err := p.Release(2*time.Hour, 8, "repaired"); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 1 {
		t.Errorf("free after release = %d", p.Free())
	}
	if err := p.Release(2*time.Hour, 8, "again"); !errors.Is(err, ErrNotAssigned) {
		t.Errorf("double release: %v", err)
	}
	// Two assigns and one release are logged; the failed assign is not.
	if got := len(p.Log()); got != 3 {
		t.Errorf("audit log = %d entries", got)
	}
}

func TestFailoverReplacesSilentBadge(t *testing.T) {
	d := NewDaemon()
	pool := NewBadgePool([]store.BadgeID{8})
	wearers := map[store.BadgeID]string{6: "F"}
	fo := NewFailover(d.Health(), pool, func(id store.BadgeID) (string, bool) {
		w, ok := wearers[id]
		return w, ok
	})
	d.Register(fo)
	// Badge 6 alive at t=0, then silent; badge 1 keeps ticking the daemon.
	d.Ingest(0, "F", 6, wearRec(0, true))
	for at := time.Minute; at < 2*time.Hour; at += time.Minute {
		d.Ingest(at, "A", 1, record.Record{Local: at, Kind: record.KindEnv})
	}
	alerts := d.AlertsOfKind("failover")
	if len(alerts) != 1 {
		t.Fatalf("failover alerts = %d: %v", len(alerts), alerts)
	}
	if alerts[0].Subject != "F" {
		t.Errorf("failover subject = %q", alerts[0].Subject)
	}
	if w, ok := pool.WearerOf(8); !ok || w != "F" {
		t.Errorf("spare assignment = %q, %v", w, ok)
	}
}

func TestFailoverPoolExhausted(t *testing.T) {
	d := NewDaemon()
	pool := NewBadgePool(nil)
	wearers := map[store.BadgeID]string{6: "F"}
	fo := NewFailover(d.Health(), pool, func(id store.BadgeID) (string, bool) {
		w, ok := wearers[id]
		return w, ok
	})
	d.Register(fo)
	d.Ingest(0, "F", 6, wearRec(0, true))
	for at := time.Minute; at < 2*time.Hour; at += time.Minute {
		d.Ingest(at, "A", 1, record.Record{Local: at, Kind: record.KindEnv})
	}
	alerts := d.AlertsOfKind("failover")
	if len(alerts) != 1 || alerts[0].Severity != Critical {
		t.Fatalf("exhausted-pool alerts = %v", alerts)
	}
}

func TestCouncilApproval(t *testing.T) {
	crew := []string{"A", "B", "D", "E", "F"}
	link := uplink.NewLink(20 * time.Minute)
	c := NewCouncil(crew, link)
	p, err := c.Propose(0, "B", "raise mic sampling to 30s cadence")
	if err != nil {
		t.Fatal(err)
	}
	if p.Status() != Pending {
		t.Fatalf("status = %v", p.Status())
	}
	// Crew majority: B(yes) + A + D = 3 of 5.
	if err := c.Vote(time.Minute, p.ID, "A", true); err != nil {
		t.Fatal(err)
	}
	if err := c.Vote(2*time.Minute, p.ID, "D", true); err != nil {
		t.Fatal(err)
	}
	// Still pending: mission control hasn't decided.
	if p.Status() != Pending {
		t.Fatalf("status before MC = %v", p.Status())
	}
	// The proposal travelled over the link to mission control.
	if got := link.Receive(uplink.MissionControl, 25*time.Minute); len(got) != 1 {
		t.Fatalf("MC inbox = %d", len(got))
	}
	if err := c.MissionControlDecision(45*time.Minute, p.ID, true); err != nil {
		t.Fatal(err)
	}
	if p.Status() != Approved {
		t.Fatalf("status = %v", p.Status())
	}
	if p.DecidedAt() != 45*time.Minute {
		t.Errorf("decided at %v", p.DecidedAt())
	}
	// Voting after the decision fails.
	if err := c.Vote(time.Hour, p.ID, "E", true); !errors.Is(err, ErrDecided) {
		t.Errorf("vote after decision: %v", err)
	}
}

func TestCouncilRejections(t *testing.T) {
	crew := []string{"A", "B", "D", "E", "F"}
	c := NewCouncil(crew, uplink.NewLink(time.Minute))
	// MC veto.
	p, err := c.Propose(0, "B", "disable IR sensing")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MissionControlDecision(time.Hour, p.ID, false); err != nil {
		t.Fatal(err)
	}
	if p.Status() != Rejected {
		t.Errorf("MC veto: %v", p.Status())
	}
	// Crew majority rejection.
	p2, err := c.Propose(0, "F", "turn off all sensors at night")
	if err != nil {
		t.Fatal(err)
	}
	for _, voter := range []string{"A", "B", "D"} {
		if err := c.Vote(time.Minute, p2.ID, voter, false); err != nil {
			t.Fatal(err)
		}
	}
	if p2.Status() != Rejected {
		t.Errorf("crew rejection: %v", p2.Status())
	}
}

func TestCouncilValidation(t *testing.T) {
	c := NewCouncil([]string{"A", "B"}, nil)
	if _, err := c.Propose(0, "Z", "x"); !errors.Is(err, ErrNotCrew) {
		t.Errorf("outsider proposal: %v", err)
	}
	if err := c.Vote(0, 99, "A", true); !errors.Is(err, ErrUnknownProposal) {
		t.Errorf("unknown proposal: %v", err)
	}
	p, err := c.Propose(0, "A", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Vote(0, p.ID, "Z", true); !errors.Is(err, ErrNotCrew) {
		t.Errorf("outsider vote: %v", err)
	}
	if _, err := c.Proposal(p.ID); err != nil {
		t.Errorf("lookup: %v", err)
	}
	if _, err := c.Proposal(42); !errors.Is(err, ErrUnknownProposal) {
		t.Errorf("missing lookup: %v", err)
	}
}

func TestCouncilAutonomousMode(t *testing.T) {
	// Without a link (communication blackout) mission-control assent is
	// implied, so a crew majority suffices.
	crew := []string{"A", "B", "D"}
	c := NewCouncil(crew, nil)
	p, err := c.Propose(0, "A", "boost alert volume")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Vote(time.Minute, p.ID, "B", true); err != nil {
		t.Fatal(err)
	}
	if p.Status() != Approved {
		t.Errorf("autonomous approval: %v", p.Status())
	}
}

func TestSeverityAndStatusStrings(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Critical.String() != "critical" {
		t.Error("severity names")
	}
	if Severity(9).String() != "severity(9)" {
		t.Error("unknown severity")
	}
	if Pending.String() != "pending" || Approved.String() != "approved" || Rejected.String() != "rejected" {
		t.Error("status names")
	}
	if ProposalStatus(9).String() != "status(9)" {
		t.Error("unknown status")
	}
}

func TestDaemonAlertSubscription(t *testing.T) {
	d := NewDaemon()
	d.Register(NewBatteryDetector())
	var got []Alert
	d.OnAlert(func(a Alert) { got = append(got, a) })
	d.Ingest(0, "B", 2, record.Record{Local: 0, Kind: record.KindBattery, BatteryPct: 5})
	if len(got) != 1 {
		t.Errorf("subscriber got %d alerts", len(got))
	}
}

func TestInactivityToleratesIngestionGap(t *testing.T) {
	d := NewDaemon()
	det := NewInactivityDetector()
	d.Register(det)
	d.Ingest(0, "A", 1, wearRec(0, true))
	// Movement, then stillness for 10 min — well under MaxStill.
	d.Ingest(0, "A", 1, accelRec(0, 200))
	for at := 10 * time.Second; at < 10*time.Minute; at += 10 * time.Second {
		d.Ingest(at, "A", 1, accelRec(at, 3))
	}
	// A 3-hour ingestion gap (RF outage, gateway restart): no records at
	// all. Sweeps during the gap must not read the silence as stillness.
	for at := 10 * time.Minute; at < 3*time.Hour; at += 10 * time.Minute {
		d.Sweep(at)
	}
	if got := len(d.AlertsOfKind("inactivity")); got != 0 {
		t.Fatalf("false inactivity alerts during ingestion gap: %d", got)
	}
	// The stream resumes with still-but-present records: the detector must
	// re-baseline instead of alerting off the stale pre-gap movement clock.
	resume := 3 * time.Hour
	for at := resume; at < resume+10*time.Minute; at += 10 * time.Second {
		d.Ingest(at, "A", 1, accelRec(at, 3))
	}
	if got := len(d.AlertsOfKind("inactivity")); got != 0 {
		t.Fatalf("false inactivity alert right after gap: %d", got)
	}
	// Genuine post-gap stillness must still fire once MaxStill accumulates
	// on fresh data.
	for at := resume + 10*time.Minute; at < resume+45*time.Minute; at += 10 * time.Second {
		d.Ingest(at, "A", 1, accelRec(at, 3))
	}
	alerts := d.AlertsOfKind("inactivity")
	if len(alerts) != 1 {
		t.Fatalf("post-gap stillness alerts = %d (%v)", len(alerts), alerts)
	}
	if alerts[0].At < resume+30*time.Minute {
		t.Errorf("alert at %v, before MaxStill of fresh post-gap data", alerts[0].At)
	}
}

func TestReplayerGateWithholdsRecords(t *testing.T) {
	ds := store.NewDataset()
	s := ds.Series(1)
	for at := time.Duration(0); at < time.Hour; at += time.Minute {
		s.Append(accelRec(at, 100))
	}
	d := NewDaemon()
	r := NewReplayer(d, ds, nil)
	r.Gate = func(_ store.BadgeID, at time.Duration) bool {
		return at < 30*time.Minute // outage in the second half-hour
	}
	n := r.Run(0, time.Hour)
	if n != 30 {
		t.Errorf("ingested %d records, want 30", n)
	}
	if r.Withheld() != 30 {
		t.Errorf("withheld %d records, want 30", r.Withheld())
	}
}
