// Package survey models the classic instrument the deployment kept
// alongside the badges: short evening self-reports "filled in by each
// astronaut every evening", asking about satisfaction, well-being, comfort,
// productivity, and distraction. The paper used them to "interpret and
// verify the findings obtained through multi-modal sensing"; this package
// generates scripted synthetic responses and provides the cross-validation
// (sensed-metric vs reported-score correlation) the verification relied on.
package survey

import (
	"errors"
	"fmt"
	"sort"

	"icares/internal/stats"
)

// Question identifies one evening-survey item.
type Question int

// The five ICAres-1 evening questions.
const (
	Satisfaction Question = iota + 1
	WellBeing
	Comfort
	Productivity
	Distraction
)

// Questions lists all items in order.
func Questions() []Question {
	return []Question{Satisfaction, WellBeing, Comfort, Productivity, Distraction}
}

// String returns the question label.
func (q Question) String() string {
	switch q {
	case Satisfaction:
		return "satisfaction"
	case WellBeing:
		return "well-being"
	case Comfort:
		return "comfort"
	case Productivity:
		return "productivity"
	case Distraction:
		return "distraction"
	default:
		return fmt.Sprintf("question(%d)", int(q))
	}
}

// Scale bounds: 1 (lowest) to 7 (highest), a standard Likert scale.
const (
	ScaleMin = 1
	ScaleMax = 7
)

// Response is one astronaut's answers for one evening.
type Response struct {
	Name    string
	Day     int
	Answers map[Question]int
}

// ErrBadScale reports an out-of-range answer.
var ErrBadScale = errors.New("survey: answer out of scale")

// Validate checks the response.
func (r Response) Validate() error {
	for q, v := range r.Answers {
		if v < ScaleMin || v > ScaleMax {
			return fmt.Errorf("%w: %v=%d", ErrBadScale, q, v)
		}
	}
	return nil
}

// Collection stores all responses of a mission.
type Collection struct {
	responses []Response
}

// Add appends a validated response.
func (c *Collection) Add(r Response) error {
	if err := r.Validate(); err != nil {
		return err
	}
	c.responses = append(c.responses, r)
	return nil
}

// Len returns the number of stored responses.
func (c *Collection) Len() int { return len(c.responses) }

// ByDay returns the mean answer to q per day across the crew.
func (c *Collection) ByDay(q Question) map[int]float64 {
	sums := make(map[int]float64)
	counts := make(map[int]int)
	for _, r := range c.responses {
		if v, ok := r.Answers[q]; ok {
			sums[r.Day] += float64(v)
			counts[r.Day]++
		}
	}
	out := make(map[int]float64, len(sums))
	for d, s := range sums {
		out[d] = s / float64(counts[d])
	}
	return out
}

// ForAstronaut returns one astronaut's per-day answers to q.
func (c *Collection) ForAstronaut(name string, q Question) map[int]float64 {
	out := make(map[int]float64)
	for _, r := range c.responses {
		if r.Name != name {
			continue
		}
		if v, ok := r.Answers[q]; ok {
			out[r.Day] = float64(v)
		}
	}
	return out
}

// MoodModel generates scripted synthetic responses: scores track the
// mission's behavioural trend (declining morale), with sharp dips after
// astronaut C's death and on the food-shortage and reprimand days — the
// ground truth the sensed speech decline should correlate with.
type MoodModel struct {
	// TrendFor maps a day to the mission talk-trend multiplier in (0,1].
	TrendFor func(day int) float64
	// DeathDay depresses well-being from the following day.
	DeathDay int
	// Noise is the response randomness (Likert points).
	Noise float64
}

// Generate produces a full mission's responses for the crew.
func (m MoodModel) Generate(names []string, firstDay, lastDay int, rng *stats.RNG) (*Collection, error) {
	if m.TrendFor == nil {
		return nil, errors.New("survey: nil trend")
	}
	col := &Collection{}
	for day := firstDay; day <= lastDay; day++ {
		trend := m.TrendFor(day)
		for _, name := range names {
			base := 2.2 + 4.5*trend // 1..7 scale anchor
			grief := 0.0
			if m.DeathDay > 0 && day > m.DeathDay {
				grief = 0.8 / float64(day-m.DeathDay)
			}
			score := func(offset float64) int {
				v := int(base + offset - grief + rng.Norm(0, m.Noise) + 0.5)
				if v < ScaleMin {
					v = ScaleMin
				}
				if v > ScaleMax {
					v = ScaleMax
				}
				return v
			}
			resp := Response{
				Name: name, Day: day,
				Answers: map[Question]int{
					Satisfaction: score(0),
					WellBeing:    score(-0.2),
					Comfort:      score(0.3),
					Productivity: score(0.1),
					// Distraction is inverted: quiet, tense days are less
					// distracting but worse; keep it loosely tied to trend.
					Distraction: score(-0.5),
				},
			}
			if err := col.Add(resp); err != nil {
				return nil, err
			}
		}
	}
	return col, nil
}

// CrossValidate correlates a sensed per-day metric with the crew-mean
// survey answer to q over the days both exist — the paper's verification
// step ("the answers allowed us to interpret and verify the findings
// obtained through multi-modal sensing").
func CrossValidate(c *Collection, q Question, sensedByDay map[int]float64) (r float64, n int, err error) {
	reported := c.ByDay(q)
	days := make([]int, 0, len(reported))
	for d := range reported {
		if _, ok := sensedByDay[d]; ok {
			days = append(days, d)
		}
	}
	sort.Ints(days)
	xs := make([]float64, 0, len(days))
	ys := make([]float64, 0, len(days))
	for _, d := range days {
		xs = append(xs, sensedByDay[d])
		ys = append(ys, reported[d])
	}
	r, err = stats.Pearson(xs, ys)
	return r, len(days), err
}
