package survey

import (
	"errors"
	"testing"

	"icares/internal/mission"
	"icares/internal/stats"
)

func TestResponseValidation(t *testing.T) {
	good := Response{Name: "A", Day: 2, Answers: map[Question]int{Satisfaction: 5}}
	if err := good.Validate(); err != nil {
		t.Errorf("good response: %v", err)
	}
	bad := Response{Name: "A", Day: 2, Answers: map[Question]int{Satisfaction: 9}}
	if err := bad.Validate(); !errors.Is(err, ErrBadScale) {
		t.Errorf("bad response: %v", err)
	}
	var c Collection
	if err := c.Add(bad); err == nil {
		t.Error("bad response accepted")
	}
	if err := c.Add(good); err != nil || c.Len() != 1 {
		t.Errorf("add: %v, len %d", err, c.Len())
	}
}

func TestByDayAndForAstronaut(t *testing.T) {
	var c Collection
	add := func(name string, day, sat int) {
		t.Helper()
		if err := c.Add(Response{Name: name, Day: day, Answers: map[Question]int{Satisfaction: sat}}); err != nil {
			t.Fatal(err)
		}
	}
	add("A", 2, 6)
	add("B", 2, 4)
	add("A", 3, 2)
	byDay := c.ByDay(Satisfaction)
	if byDay[2] != 5 || byDay[3] != 2 {
		t.Errorf("by day = %v", byDay)
	}
	forA := c.ForAstronaut("A", Satisfaction)
	if forA[2] != 6 || forA[3] != 2 {
		t.Errorf("for A = %v", forA)
	}
}

func TestMoodModelGeneratesFullGrid(t *testing.T) {
	sc := mission.DefaultScenario(5)
	m := MoodModel{TrendFor: sc.TalkTrend, DeathDay: sc.DeathDay, Noise: 0.4}
	col, err := m.Generate(mission.Names(), 2, 14, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 6*13 {
		t.Errorf("responses = %d, want %d", col.Len(), 6*13)
	}
	// Scores must decline: early satisfaction above late satisfaction, and
	// the shortage day must dip below its neighbours.
	byDay := col.ByDay(Satisfaction)
	if byDay[2] <= byDay[14] {
		t.Errorf("satisfaction day2 %v <= day14 %v", byDay[2], byDay[14])
	}
	if byDay[11] >= byDay[10] {
		t.Errorf("shortage day %v not below day 10 %v", byDay[11], byDay[10])
	}
}

func TestMoodModelNilTrend(t *testing.T) {
	m := MoodModel{}
	if _, err := m.Generate([]string{"A"}, 2, 3, stats.NewRNG(1)); err == nil {
		t.Error("nil trend accepted")
	}
}

func TestCrossValidateCorrelation(t *testing.T) {
	sc := mission.DefaultScenario(7)
	m := MoodModel{TrendFor: sc.TalkTrend, DeathDay: sc.DeathDay, Noise: 0.3}
	col, err := m.Generate(mission.Names(), 2, 14, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// A sensed metric that follows the same trend (e.g. the speech
	// fraction) must correlate positively with reported satisfaction.
	sensed := make(map[int]float64)
	for day := 2; day <= 14; day++ {
		sensed[day] = 0.4 * sc.TalkTrend(day)
	}
	r, n, err := CrossValidate(col, Satisfaction, sensed)
	if err != nil {
		t.Fatal(err)
	}
	if n != 13 {
		t.Errorf("days = %d", n)
	}
	if r < 0.6 {
		t.Errorf("correlation = %v, want strong positive", r)
	}
	// An unrelated constant metric yields a degenerate correlation error.
	flat := map[int]float64{2: 1, 3: 1, 4: 1}
	if _, _, err := CrossValidate(col, Satisfaction, flat); err == nil {
		t.Log("flat metric produced a defined correlation (possible with noise)")
	}
}

func TestQuestionStrings(t *testing.T) {
	want := map[Question]string{
		Satisfaction: "satisfaction",
		WellBeing:    "well-being",
		Comfort:      "comfort",
		Productivity: "productivity",
		Distraction:  "distraction",
	}
	for q, s := range want {
		if q.String() != s {
			t.Errorf("%v != %s", q, s)
		}
	}
	if Question(9).String() != "question(9)" {
		t.Error("unknown question")
	}
	if len(Questions()) != 5 {
		t.Error("question list")
	}
}
