package telemetry

import (
	"testing"
	"time"
)

// BenchmarkJournalAppend measures flight-recorder append throughput with
// ring eviction in steady state (capacity far below b.N).
func BenchmarkJournalAppend(b *testing.B) {
	j := NewJournal(DefaultJournalCapacity)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Emit(time.Duration(i)*time.Second, SevInfo, "bench", "tick", "t", F("k", "v"))
	}
	b.StopTimer()
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "events/s")
	}
}

// BenchmarkJournalAppendParallel hammers one journal from all procs — the
// contention profile of a fleet under chaos.
func BenchmarkJournalAppendParallel(b *testing.B) {
	j := NewJournal(DefaultJournalCapacity)
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			j.Emit(time.Second, SevInfo, "bench", "tick", "t")
		}
	})
	b.StopTimer()
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "events/s")
	}
}

// BenchmarkHistogramObserve pins the single-goroutine Observe cost.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 10000)
	}
}

// BenchmarkHistogramObserveParallel shows the win from moving the bucket
// search out of the critical section: all procs observe into one histogram
// and only the three counter updates serialize.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) / 10000)
			i++
		}
	})
}

// BenchmarkRegistryWrite measures a realistic scrape: a registry shaped
// like one habitat's (counters + gauges + histograms, labelled), reporting
// the exposition size so the bench lane tracks scrape weight over time.
func BenchmarkRegistryWrite(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		lbl := L("badge", string(rune('a'+i)))
		r.Counter("offload_batches_total", lbl).Add(uint64(i) * 7)
		r.Gauge("offload_held", lbl).Set(float64(i))
		h := r.Histogram("stage_seconds", nil, lbl)
		for k := 0; k < 32; k++ {
			h.Observe(float64(k) / 100)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.String()
	}
	b.StopTimer()
	// After ResetTimer, or the harness discards the metric with the timer.
	b.ReportMetric(float64(len(r.String())), "exposition_bytes")
}
