package telemetry

import (
	"expvar"
	"sync"
)

// expvar integration: habitatd publishes its registry so the standard
// debug endpoints (/debug/vars alongside /debug/pprof) expose live system
// state with zero extra dependencies.

var (
	pubMu   sync.Mutex
	pubDone = make(map[string]bool)
)

// PublishExpvar registers the registry under name in the process-wide
// expvar namespace; /debug/vars then shows the full exposition text under
// that key, re-rendered on every scrape. Publishing the same name twice is
// a no-op for the second caller (expvar itself panics on duplicates, which
// would turn a double-initialized daemon into a crash).
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	pubMu.Lock()
	defer pubMu.Unlock()
	if pubDone[name] {
		return
	}
	pubDone[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.String() }))
}
