package telemetry

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The journal is the flight recorder of the observability plane: where the
// metrics registry answers "how much, right now", the journal answers "what
// happened, in what order". Every entry is a structured event on the
// simulated mission clock, so a crew (or the CTMC reliability fit twenty
// light-minutes away) can replay a habitat's failure story from the black
// box instead of reverse-engineering it from counter deltas.

// EventSeverity grades journal events. It is deliberately distinct from
// support.Severity: the journal records system-plane events (crashes,
// backoff, quarantines), not just crew-facing alerts.
type EventSeverity int

// Event severities, in ascending order.
const (
	SevDebug EventSeverity = iota + 1
	SevInfo
	SevWarn
	SevError
)

// String returns the severity label.
func (s EventSeverity) String() string {
	switch s {
	case SevDebug:
		return "debug"
	case SevInfo:
		return "info"
	case SevWarn:
		return "warning"
	case SevError:
		return "error"
	default:
		return "severity(" + strconv.Itoa(int(s)) + ")"
	}
}

// ParseSeverity maps a severity label back to its value.
func ParseSeverity(s string) (EventSeverity, bool) {
	switch s {
	case "debug":
		return SevDebug, true
	case "info":
		return SevInfo, true
	case "warning", "warn":
		return SevWarn, true
	case "error":
		return SevError, true
	default:
		return 0, false
	}
}

// Field is one ordered key/value annotation on an event.
type Field struct {
	Key, Value string
}

// F is shorthand for constructing a Field.
func F(key, value string) Field { return Field{Key: key, Value: value} }

// Fu renders a uint64 field.
func Fu(key string, v uint64) Field { return Field{Key: key, Value: strconv.FormatUint(v, 10)} }

// Fi renders an int field.
func Fi(key string, v int) Field { return Field{Key: key, Value: strconv.Itoa(v)} }

// Event is one structured flight-recorder entry.
type Event struct {
	// Seq is the journal-assigned append ordinal (1-based): a total order
	// over one journal's events, stable across ring eviction.
	Seq uint64
	// At is the simulated mission time of the event.
	At time.Duration
	// Component names the emitting subsystem ("offload", "support",
	// "mission", "fleet", "uplink").
	Component string
	Severity  EventSeverity
	// Habitat tags the event with its habitat ID in fleet deployments
	// (stamped by the journal when set; "" outside a fleet).
	Habitat string
	// Kind is the stable machine-readable event type ("gateway-crash",
	// "badge-death", "alert", "quarantine", ...).
	Kind    string
	Message string
	// Fields carry structured detail, in emission order.
	Fields []Field
}

// appendJSON renders the event as one JSON object with a fixed key order,
// byte-deterministically (no reflection, no map iteration).
func (e Event) appendJSON(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"at_ns":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	b = append(b, `,"at":`...)
	b = strconv.AppendQuote(b, e.At.String())
	b = append(b, `,"severity":`...)
	b = strconv.AppendQuote(b, e.Severity.String())
	b = append(b, `,"component":`...)
	b = strconv.AppendQuote(b, e.Component)
	if e.Habitat != "" {
		b = append(b, `,"habitat":`...)
		b = strconv.AppendQuote(b, e.Habitat)
	}
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, e.Kind)
	b = append(b, `,"message":`...)
	b = strconv.AppendQuote(b, e.Message)
	if len(e.Fields) > 0 {
		b = append(b, `,"fields":{`...)
		for i, f := range e.Fields {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, f.Key)
			b = append(b, ':')
			b = strconv.AppendQuote(b, f.Value)
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// AppendJSON exposes the deterministic single-line JSON rendering.
func (e Event) AppendJSON(b []byte) []byte { return e.appendJSON(b) }

// DefaultJournalCapacity bounds a journal built with capacity <= 0.
const DefaultJournalCapacity = 4096

// Journal is a goroutine-safe, bounded-ring flight recorder. When capacity
// is reached the oldest events are evicted and counted in Dropped — a
// months-long unattended run keeps the recent history, and the drop count
// tells an investigator exactly how much of the tape is missing. A nil
// *Journal is a usable no-op, like the registry's nil metric handles, so
// components journal unconditionally.
type Journal struct {
	mu      sync.Mutex
	events  []Event
	start   int // ring head: index of the oldest event
	count   int
	cap     int
	seq     uint64
	dropped uint64
	habitat string
}

// NewJournal creates a journal retaining up to capacity events
// (DefaultJournalCapacity if capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{events: make([]Event, capacity), cap: capacity}
}

// SetHabitat stamps every subsequently recorded event with the habitat ID
// (unless the event already carries one). Call before concurrent use.
func (j *Journal) SetHabitat(id string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.habitat = id
	j.mu.Unlock()
}

// Record appends one event, assigning its sequence number and evicting the
// oldest event past capacity.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if e.Habitat == "" {
		e.Habitat = j.habitat
	}
	if j.count == j.cap {
		j.events[j.start] = e
		j.start = (j.start + 1) % j.cap
		j.dropped++
	} else {
		j.events[(j.start+j.count)%j.cap] = e
		j.count++
	}
	j.mu.Unlock()
}

// Emit is the convenience constructor-and-record: one call sites use on hot
// paths without building an Event literal.
func (j *Journal) Emit(at time.Duration, sev EventSeverity, component, kind, message string, fields ...Field) {
	if j == nil {
		return
	}
	j.Record(Event{At: at, Severity: sev, Component: component, Kind: kind, Message: message, Fields: fields})
}

// Len returns how many events are retained.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Dropped returns how many events ring eviction has discarded.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns the retained events in append order (copy).
func (j *Journal) Events() []Event {
	return j.Select(EventQuery{})
}

// EventQuery filters a journal read. The zero value selects everything.
type EventQuery struct {
	// MinSeverity drops events below the given severity (0 = all).
	MinSeverity EventSeverity
	// Kind selects one event kind ("" = all).
	Kind string
	// Component selects one emitting component ("" = all).
	Component string
	// Limit keeps only the NEWEST n matching events (0 = all) — an
	// incident investigation wants the end of the tape, not the start.
	Limit int
}

func (q EventQuery) match(e Event) bool {
	if q.MinSeverity != 0 && e.Severity < q.MinSeverity {
		return false
	}
	if q.Kind != "" && e.Kind != q.Kind {
		return false
	}
	if q.Component != "" && e.Component != q.Component {
		return false
	}
	return true
}

// Select returns the retained events matching the query, in append order.
func (j *Journal) Select(q EventQuery) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	out := make([]Event, 0, j.count)
	for i := 0; i < j.count; i++ {
		e := j.events[(j.start+i)%j.cap]
		if q.match(e) {
			out = append(out, e)
		}
	}
	j.mu.Unlock()
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// WriteJSON dumps the retained events as JSON Lines, one event object per
// line, in append order. Two dumps with no intervening records are
// byte-identical, and equal seeds driving a deterministic pipeline produce
// equal dumps — the property the chaos suite diffs on.
func (j *Journal) WriteJSON(w io.Writer) error {
	return WriteEventsJSON(w, j.Events())
}

// WriteEventsJSON dumps an event slice as JSON Lines — the same rendering
// WriteJSON uses, for callers holding an already-merged timeline.
func WriteEventsJSON(w io.Writer, events []Event) error {
	var buf []byte
	for _, e := range events {
		buf = e.appendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// MergeEvents time-merges several journals' event slices into one timeline:
// sorted by mission time, then habitat, then sequence number — the
// deterministic cross-journal order the fleet's /fleet/events endpoint
// serves.
func MergeEvents(slices ...[]Event) []Event {
	var n int
	for _, s := range slices {
		n += len(s)
	}
	out := make([]Event, 0, n)
	for _, s := range slices {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Habitat != out[j].Habitat {
			return out[i].Habitat < out[j].Habitat
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
