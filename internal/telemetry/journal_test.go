package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	j.Record(Event{Kind: "x"})
	j.Emit(0, SevInfo, "c", "k", "m")
	j.SetHabitat("h")
	if j.Len() != 0 || j.Dropped() != 0 {
		t.Error("nil journal reports state")
	}
	if ev := j.Events(); ev != nil {
		t.Errorf("nil journal events = %v", ev)
	}
	if ev := j.Select(EventQuery{MinSeverity: SevWarn}); ev != nil {
		t.Errorf("nil journal select = %v", ev)
	}
	if err := j.WriteJSON(&strings.Builder{}); err != nil {
		t.Errorf("nil journal dump: %v", err)
	}
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(3)
	for i := 1; i <= 5; i++ {
		j.Emit(time.Duration(i)*time.Second, SevInfo, "test", "tick", "t")
	}
	if got := j.Len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	if got := j.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	ev := j.Events()
	// Oldest two evicted; sequence numbers survive eviction.
	wantSeq := []uint64{3, 4, 5}
	for i, e := range ev {
		if e.Seq != wantSeq[i] {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, wantSeq[i])
		}
		if e.At != time.Duration(wantSeq[i])*time.Second {
			t.Errorf("event %d at = %v", i, e.At)
		}
	}
}

func TestJournalSelect(t *testing.T) {
	j := NewJournal(16)
	j.Emit(1*time.Hour, SevDebug, "offload", "flush", "ok")
	j.Emit(2*time.Hour, SevWarn, "offload", "backoff-enter", "stalled")
	j.Emit(3*time.Hour, SevError, "fleet", "quarantine", "panic")
	j.Emit(4*time.Hour, SevInfo, "offload", "backoff-exit", "recovered")

	if got := len(j.Select(EventQuery{MinSeverity: SevWarn})); got != 2 {
		t.Errorf("min-severity warn matched %d, want 2", got)
	}
	if got := len(j.Select(EventQuery{Component: "offload"})); got != 3 {
		t.Errorf("component filter matched %d, want 3", got)
	}
	if got := len(j.Select(EventQuery{Kind: "quarantine"})); got != 1 {
		t.Errorf("kind filter matched %d, want 1", got)
	}
	// Limit keeps the newest matches.
	tail := j.Select(EventQuery{Limit: 2})
	if len(tail) != 2 || tail[0].Kind != "quarantine" || tail[1].Kind != "backoff-exit" {
		t.Errorf("limit tail = %+v", tail)
	}
}

func TestJournalHabitatStamp(t *testing.T) {
	j := NewJournal(4)
	j.SetHabitat("hab-00")
	j.Emit(0, SevInfo, "c", "k", "m")
	j.Record(Event{Severity: SevInfo, Component: "c", Kind: "k", Habitat: "other"})
	ev := j.Events()
	if ev[0].Habitat != "hab-00" {
		t.Errorf("unstamped event habitat = %q", ev[0].Habitat)
	}
	if ev[1].Habitat != "other" {
		t.Errorf("pre-stamped event habitat overwritten: %q", ev[1].Habitat)
	}
}

// TestJournalJSONDeterminism: two dumps with no intervening records are
// byte-identical and one-line-per-event.
func TestJournalJSONDeterminism(t *testing.T) {
	j := NewJournal(8)
	j.SetHabitat("hab-01")
	j.Emit(90*time.Minute, SevWarn, "offload", "offload-refused", "held cap", F("badge", "3"), Fu("held", 64))
	j.Emit(2*time.Hour, SevError, "fleet", "quarantine", "ingest panic", F("cause", `step "x" failed`))

	var a, b strings.Builder
	if err := j.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("dumps differ:\n%s---\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2:\n%s", len(lines), a.String())
	}
	want0 := `{"seq":1,"at_ns":5400000000000,"at":"1h30m0s","severity":"warning","component":"offload","habitat":"hab-01","kind":"offload-refused","message":"held cap","fields":{"badge":"3","held":"64"}}`
	if lines[0] != want0 {
		t.Errorf("line 0:\ngot:  %s\nwant: %s", lines[0], want0)
	}
	if !strings.Contains(lines[1], `"cause":"step \"x\" failed"`) {
		t.Errorf("line 1 quoting: %s", lines[1])
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(128)
	const writers = 8
	const per = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = j.Select(EventQuery{MinSeverity: SevWarn, Limit: 10})
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				j.Emit(time.Duration(i)*time.Second, SevInfo, "test", "tick", "t", Fi("writer", w))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := j.Len(); got != 128 {
		t.Errorf("len = %d, want 128", got)
	}
	if got := j.Dropped(); got != writers*per-128 {
		t.Errorf("dropped = %d, want %d", got, writers*per-128)
	}
	// Retained events carry the newest 128 sequence numbers, in order.
	ev := j.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, ev[i-1].Seq, ev[i].Seq)
		}
	}
	if ev[len(ev)-1].Seq != writers*per {
		t.Errorf("last seq = %d, want %d", ev[len(ev)-1].Seq, writers*per)
	}
}

func TestMergeEvents(t *testing.T) {
	a := []Event{
		{Seq: 1, At: 1 * time.Hour, Habitat: "hab-00", Kind: "x"},
		{Seq: 2, At: 3 * time.Hour, Habitat: "hab-00", Kind: "y"},
	}
	b := []Event{
		{Seq: 1, At: 2 * time.Hour, Habitat: "hab-01", Kind: "z"},
		{Seq: 2, At: 3 * time.Hour, Habitat: "hab-01", Kind: "w"},
	}
	got := MergeEvents(a, b)
	wantKinds := []string{"x", "z", "y", "w"}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Errorf("merged[%d] = %q, want %q", i, got[i].Kind, k)
		}
	}
}

func TestParseSeverity(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EventSeverity
		ok   bool
	}{
		{"debug", SevDebug, true}, {"info", SevInfo, true},
		{"warning", SevWarn, true}, {"warn", SevWarn, true},
		{"error", SevError, true}, {"", 0, false}, {"fatal", 0, false},
	} {
		got, ok := ParseSeverity(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseSeverity(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	// Round trip.
	for _, s := range []EventSeverity{SevDebug, SevInfo, SevWarn, SevError} {
		if got, ok := ParseSeverity(s.String()); !ok || got != s {
			t.Errorf("round trip %v failed", s)
		}
	}
}
