// Package telemetry is the observability substrate of the online data
// path: a zero-dependency, goroutine-safe metrics registry (counters,
// gauges, histograms with fixed bucket layouts) plus lightweight span
// tracing driven by the simulated mission clock.
//
// The paper's Section VI support system must run unattended for months;
// the crew (and a mission control twenty light-minutes away) need to see
// its health without log archaeology. Every hot-path component — offload
// gateway and uploaders, uplink links, the mission engine, the support
// daemon, the sociometry pipeline — registers its counters here, and a
// scraper reads one consistent snapshot via Write.
//
// # Conventions
//
// Metric names are snake_case, prefixed with their subsystem and suffixed
// with the unit or "_total" for monotonic counters
// (offload_gateway_batches_total, uplink_pending, sociometry_stage_seconds).
// Dimensions go in labels, never in the name.
//
// Every constructor and method is nil-receiver safe: an uninstrumented
// component holds nil handles and its Inc/Set/Observe calls are no-ops, so
// instrumentation never needs to branch.
//
// # Determinism
//
// Write emits metrics sorted by name and then by label identity, so two
// scrapes with no intervening writes are byte-identical — the property the
// chaos suite relies on when diffing system state across runs.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" metric dimension.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefBuckets is the default histogram layout for durations in seconds,
// spanning 100 µs to 10 s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases the gauge by delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. Bucket bounds are
// inclusive upper edges (observation v lands in the first bucket with
// v <= bound); everything above the last bound lands in the implicit +Inf
// bucket. The layout is frozen at construction.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// bounds are frozen at construction and published happens-before via
	// the registry lock, so the bucket search is safe outside the mutex —
	// the critical section is just the three counter updates.
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistogramSnapshot is one consistent view of a histogram.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // per-bucket, last entry is the +Inf bucket
	Sum    float64
	Count  uint64
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name   string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. All methods are safe for concurrent use; a
// nil *Registry hands out nil metric handles whose mutators are no-ops, so
// components can be instrumented unconditionally.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry // keyed by identity (name + sorted labels)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// identity builds the map key and exposition label block for name+labels.
func identity(name string, labels []Label) (key, block string) {
	if len(labels) == 0 {
		return name, ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return name + b.String(), b.String()
}

// lookup returns the entry for (name, labels), creating it with mk on first
// use. Re-registering the same identity with a different kind panics: that
// is a programming error, two subsystems fighting over one name.
func (r *Registry) lookup(name string, labels []Label, kind metricKind, mk func() *entry) *entry {
	key, _ := identity(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered with a different kind", key))
		}
		return e
	}
	e := mk()
	r.entries[key] = e
	return e
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, labels, kindCounter, func() *entry {
		return &entry{name: name, labels: labels, kind: kindCounter, c: new(Counter)}
	})
	return e.c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, labels, kindGauge, func() *entry {
		return &entry{name: name, labels: labels, kind: kindGauge, g: new(Gauge)}
	})
	return e.g
}

// Histogram returns the histogram registered under name+labels, creating it
// with the given bucket bounds on first use (later calls reuse the frozen
// layout; pass nil to mean DefBuckets). Bounds must be sorted ascending.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(name, labels, kindHistogram, func() *entry {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		bs := append([]float64(nil), bounds...)
		return &entry{name: name, labels: labels, kind: kindHistogram, h: &Histogram{
			bounds: bs,
			counts: make([]uint64, len(bs)+1),
		}}
	})
	return e.h
}

// point is one exposition line: a fully-labelled name and its value text.
type point struct {
	fam  string // metric family name, for # TYPE grouping
	kind metricKind
	key  string // sort key: name + label block (+ synthetic suffixes)
	line string
}

// typeName renders the metric kind for # TYPE comment lines.
func (k metricKind) typeName() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// fnum formats a float deterministically.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// snapshot renders every metric to exposition lines under the registry
// lock. Counter/gauge/histogram internals are read through their own
// atomic/mutex access, so each value is itself consistent.
func (r *Registry) snapshot() []point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()

	var pts []point
	for _, e := range entries {
		_, block := identity(e.name, e.labels)
		switch e.kind {
		case kindCounter:
			pts = append(pts, point{
				fam: e.name, kind: e.kind,
				key:  e.name + block,
				line: fmt.Sprintf("%s%s %d", e.name, block, e.c.Value()),
			})
		case kindGauge:
			pts = append(pts, point{
				fam: e.name, kind: e.kind,
				key:  e.name + block,
				line: fmt.Sprintf("%s%s %s", e.name, block, fnum(e.g.Value())),
			})
		case kindHistogram:
			s := e.h.Snapshot()
			cum := uint64(0)
			for i, n := range s.Counts {
				cum += n
				le := "+Inf"
				if i < len(s.Bounds) {
					le = fnum(s.Bounds[i])
				}
				leBlock := mergeLabel(block, "le", le)
				pts = append(pts, point{
					fam: e.name, kind: e.kind,
					key:  fmt.Sprintf("%s_bucket%s~%03d", e.name, block, i),
					line: fmt.Sprintf("%s_bucket%s %d", e.name, leBlock, cum),
				})
			}
			pts = append(pts, point{
				fam: e.name, kind: e.kind,
				key:  e.name + "_sum" + block,
				line: fmt.Sprintf("%s_sum%s %s", e.name, block, fnum(s.Sum)),
			})
			pts = append(pts, point{
				fam: e.name, kind: e.kind,
				key:  e.name + "_count" + block,
				line: fmt.Sprintf("%s_count%s %d", e.name, block, s.Count),
			})
		}
	}
	// Sort by family first so each family's samples are contiguous (the
	// Prometheus text format requires it and # TYPE headers rely on it),
	// then by key for the stable within-family order.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].fam != pts[j].fam {
			return pts[i].fam < pts[j].fam
		}
		return pts[i].key < pts[j].key
	})
	return pts
}

// mergeLabel appends one label pair to an existing (possibly empty)
// rendered label block.
func mergeLabel(block, name, value string) string {
	pair := fmt.Sprintf("%s=%q", name, value)
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

// Write emits the text exposition of every registered metric, one line per
// sample, deterministically ordered (sorted by name, then labels; histogram
// buckets in bound order), with a `# TYPE name kind` header before each
// metric family so real Prometheus scrapers ingest the endpoints cleanly.
// Two writes with no intervening metric updates produce byte-identical
// output.
func (r *Registry) Write(w io.Writer) error {
	prevFam := ""
	for _, p := range r.snapshot() {
		if p.fam != prevFam {
			prevFam = p.fam
			if _, err := io.WriteString(w, "# TYPE "+p.fam+" "+p.kind.typeName()+"\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, p.line+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// String renders the exposition to a string (scrape convenience).
func (r *Registry) String() string {
	var b strings.Builder
	_ = r.Write(&b)
	return b.String()
}
