package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same identity returns the same counter.
	if r.Counter("requests_total") != c {
		t.Error("re-lookup returned a different counter")
	}
	// Different labels are different series.
	if r.Counter("requests_total", L("kind", "a")) == c {
		t.Error("labelled lookup returned the unlabelled counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every handle from a nil registry must be a usable no-op.
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if s := r.String(); s != "" {
		t.Errorf("nil registry exposition = %q", s)
	}
	var tr *Tracer
	tr.Start("x", 0).End(1) // must not panic
}

// TestHistogramBucketBoundaries pins the inclusive-upper-edge semantics:
// an observation exactly on a bound lands in that bound's bucket, and
// anything above the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4.9, 5, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Buckets: (-inf,1] (1,2] (2,5] (5,+inf)
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	const wantSum = 0.5 + 1 + 1.0000001 + 2 + 4.9 + 5 + 7
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	// The frozen layout wins over later bounds arguments.
	if h2 := r.Histogram("lat", []float64{10, 20}); h2 != h {
		t.Error("re-lookup with different bounds returned a new histogram")
	}
}

// TestSnapshotDeterminism: two scrapes with no intervening writes are
// byte-identical.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", L("x", "1")).Add(3)
	r.Counter("a_total").Inc()
	r.Gauge("depth", L("side", "up")).Set(4)
	r.Histogram("dur_seconds", []float64{0.1, 1}).Observe(0.05)
	first := r.String()
	for i := 0; i < 10; i++ {
		if again := r.String(); again != first {
			t.Fatalf("scrape %d differs:\n%s\n---\n%s", i, first, again)
		}
	}
}

// TestExpositionGolden pins the text format end to end: # TYPE headers,
// names sorted, labels sorted and quoted, cumulative buckets with le
// labels, _sum and _count lines.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("offload_batches_total", L("badge", "3")).Add(12)
	r.Counter("offload_batches_total", L("badge", "1")).Add(7)
	r.Gauge("uplink_pending", L("dst", "habitat")).Set(2)
	h := r.Histogram("stage_seconds", []float64{0.01, 0.1}, L("stage", "track"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	want := strings.Join([]string{
		`# TYPE offload_batches_total counter`,
		`offload_batches_total{badge="1"} 7`,
		`offload_batches_total{badge="3"} 12`,
		`# TYPE stage_seconds histogram`,
		`stage_seconds_bucket{stage="track",le="0.01"} 1`,
		`stage_seconds_bucket{stage="track",le="0.1"} 2`,
		`stage_seconds_bucket{stage="track",le="+Inf"} 3`,
		`stage_seconds_count{stage="track"} 3`,
		`stage_seconds_sum{stage="track"} 0.555`,
		`# TYPE uplink_pending gauge`,
		`uplink_pending{dst="habitat"} 2`,
	}, "\n") + "\n"
	if got := r.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestConcurrentScrape hammers one registry from writer and scraper
// goroutines; run under -race this is the registry's thread-safety proof.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	const writers = 4
	const perWriter = 2000
	var writersWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})
	scraperWG.Add(1)
	go func() { // scraper
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.String()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			c := r.Counter("hits_total")
			g := r.Gauge("depth")
			h := r.Histogram("lat_seconds", nil)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 100)
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	scraperWG.Wait()
	if got := r.Counter("hits_total").Value(); got != writers*perWriter {
		t.Errorf("hits = %d, want %d", got, writers*perWriter)
	}
	if got := r.Gauge("depth").Value(); got != writers*perWriter {
		t.Errorf("depth = %v, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("lat_seconds", nil).Snapshot().Count; got != writers*perWriter {
		t.Errorf("observations = %d, want %d", got, writers*perWriter)
	}
}
