package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one completed traced operation on the simulated mission clock.
// Start and End are mission times (durations since mission start), not wall
// clock: a trace of a 14-day simulated mission reads in mission time, and
// equal seeds produce equal traces.
type Span struct {
	Name       string
	Start, End time.Duration
}

// Dur returns the span length in mission time.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Tracer collects spans into a bounded ring: when the capacity is reached
// the oldest spans are dropped, so a months-long unattended run keeps the
// recent history a crew debugging an incident actually wants. All methods
// are safe for concurrent use and nil-receiver safe.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	start   int // ring head: index of the oldest span
	count   int
	cap     int
	dropped uint64
	// hist optionally mirrors span durations (seconds) into a histogram
	// per span name, for aggregate timing without reading raw spans.
	reg *Registry
}

// DefaultTraceCapacity bounds a tracer built with capacity <= 0.
const DefaultTraceCapacity = 4096

// SpanBuckets are the histogram bounds for mirrored span durations, in
// seconds of mission time: spans on the simulated clock range from
// sub-minute operations to multi-day phases, so the wall-clock DefBuckets
// (capped at 10s) would collapse them all into +Inf.
var SpanBuckets = []float64{
	1, 60, 300, 900, 3600, 6 * 3600, 12 * 3600, 86400, 3 * 86400, 7 * 86400,
}

// NewTracer creates a tracer retaining up to capacity spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{spans: make([]Span, capacity), cap: capacity}
}

// Mirror also records every ended span's duration into
// reg's "trace_span_seconds" histogram, labelled by span name.
func (t *Tracer) Mirror(reg *Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reg = reg
	t.mu.Unlock()
}

// ActiveSpan is a started, not yet ended span.
type ActiveSpan struct {
	t     *Tracer
	name  string
	start time.Duration
}

// Start opens a span at mission time at. End it with ActiveSpan.End; an
// unended span is never recorded.
func (t *Tracer) Start(name string, at time.Duration) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, name: name, start: at}
}

// End closes the span at mission time at and records it.
func (s *ActiveSpan) End(at time.Duration) {
	if s == nil || s.t == nil {
		return
	}
	s.t.record(Span{Name: s.name, Start: s.start, End: at})
}

// record appends one completed span, evicting the oldest past capacity.
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	if t.count == t.cap {
		t.spans[t.start] = sp
		t.start = (t.start + 1) % t.cap
		t.dropped++
	} else {
		t.spans[(t.start+t.count)%t.cap] = sp
		t.count++
	}
	reg := t.reg
	t.mu.Unlock()
	if reg != nil {
		reg.Histogram("trace_span_seconds", SpanBuckets, L("span", sp.Name)).
			Observe(sp.Dur().Seconds())
	}
}

// Spans returns the retained spans, oldest first (copy).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.count)
	for i := 0; i < t.count; i++ {
		out = append(out, t.spans[(t.start+i)%t.cap])
	}
	return out
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Write dumps the retained spans oldest-first, one per line:
//
//	span <name> start=<mission time> end=<mission time> dur=<duration>
//
// Under a single-goroutine simulation loop the dump is deterministic for
// equal seeds, since every timestamp is simulated.
func (t *Tracer) Write(w io.Writer) error {
	for _, sp := range t.Spans() {
		if _, err := fmt.Fprintf(w, "span %s start=%s end=%s dur=%s\n",
			sp.Name, sp.Start, sp.End, sp.Dur()); err != nil {
			return err
		}
	}
	return nil
}
