package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("mission.day", 2*time.Hour)
	sp.End(3 * time.Hour)
	tr.Start("offload.flush", 3*time.Hour).End(3*time.Hour + time.Minute)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "mission.day" || spans[0].Dur() != time.Hour {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Dur() != time.Minute {
		t.Errorf("span 1 dur = %v, want 1m", spans[1].Dur())
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * time.Second
		tr.Start("s", at).End(at + time.Second)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained = %d, want 3", len(spans))
	}
	// Oldest first, and the two earliest spans were evicted.
	if spans[0].Start != 2*time.Second || spans[2].Start != 4*time.Second {
		t.Errorf("retained window = [%v, %v], want [2s, 4s]", spans[0].Start, spans[2].Start)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestTracerWriteDeterministic(t *testing.T) {
	mk := func() string {
		tr := NewTracer(16)
		tr.Start("a", 0).End(time.Second)
		tr.Start("b", time.Second).End(3*time.Second + 500*time.Millisecond)
		var b strings.Builder
		if err := tr.Write(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := mk()
	if first != mk() {
		t.Error("equal span sequences rendered differently")
	}
	if !strings.Contains(first, "span b start=1s end=3.5s dur=2.5s") {
		t.Errorf("unexpected dump:\n%s", first)
	}
}

func TestTracerMirror(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(4)
	tr.Mirror(r)
	tr.Start("tick", 0).End(2 * time.Second)
	s := r.Histogram("trace_span_seconds", DefBuckets, L("span", "tick")).Snapshot()
	if s.Count != 1 || s.Sum != 2 {
		t.Errorf("mirrored histogram = count %d sum %v, want 1/2", s.Count, s.Sum)
	}
}
