// Package timesync turns opportunistic clock-exchange observations into
// per-badge clock corrections. The paper's deployment kept one permanently
// charged reference badge at the charging station which "served for the
// other badges as a time source, with which they communicated
// opportunistically. In effect, we were able to compute clock shifts between
// distinct devices and compare their sensor readings to the reference ones."
//
// A badge's local clock is modelled (see simtime.Oscillator) as
//
//	local = Offset + (1 + Skew) * ref
//
// Given sync observations (localᵢ, refᵢ) this package estimates Offset and
// Skew by ordinary least squares and produces a Correction that rectifies
// local timestamps to reference (mission) time. All downstream cross-badge
// analyses — meetings, co-presence, conversation timelines — require this
// rectification to be meaningful.
package timesync

import (
	"errors"
	"fmt"
	"time"

	"icares/internal/record"
	"icares/internal/stats"
)

// Errors of the estimator.
var (
	// ErrTooFewObservations is returned when fewer than MinObservations
	// sync exchanges are available.
	ErrTooFewObservations = errors.New("timesync: too few sync observations")
	// ErrDegenerate is returned when all observations coincide in time.
	ErrDegenerate = errors.New("timesync: degenerate observations")
)

// MinObservations is the minimum number of sync exchanges needed to
// estimate both offset and skew.
const MinObservations = 2

// Observation is one opportunistic exchange with the reference badge: the
// badge's local clock and the reference clock captured at the same instant.
type Observation struct {
	Local time.Duration
	Ref   time.Duration
}

// Correction maps a badge's local clock to reference time.
type Correction struct {
	// Offset is the estimated phase error: local at ref=0.
	Offset time.Duration
	// Skew is the estimated fractional frequency error (dimensionless;
	// 1e-6 is 1 ppm).
	Skew float64
	// Residual is the RMS residual of the fit, a confidence signal.
	Residual time.Duration
	// N is the number of observations used.
	N int
}

// Estimate fits a Correction to the observations by least squares over
// local = offset + (1+skew)·ref.
func Estimate(obs []Observation) (Correction, error) {
	if len(obs) < MinObservations {
		return Correction{}, fmt.Errorf("%w: have %d, need %d", ErrTooFewObservations, len(obs), MinObservations)
	}
	xs := make([]float64, len(obs))
	ys := make([]float64, len(obs))
	for i, o := range obs {
		xs[i] = float64(o.Ref)
		ys[i] = float64(o.Local)
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		if errors.Is(err, stats.ErrDegenerate) {
			return Correction{}, ErrDegenerate
		}
		return Correction{}, fmt.Errorf("fit: %w", err)
	}
	c := Correction{
		Offset: time.Duration(fit.Intercept),
		Skew:   fit.Slope - 1,
		N:      len(obs),
	}
	// RMS residual.
	var sq float64
	for i := range xs {
		r := ys[i] - (fit.Intercept + fit.Slope*xs[i])
		sq += r * r
	}
	c.Residual = time.Duration(sqrt(sq / float64(len(xs))))
	return c, nil
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	// Newton iterations are plenty for residual reporting.
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// ToReference converts a local badge timestamp to reference time.
func (c Correction) ToReference(local time.Duration) time.Duration {
	return time.Duration(float64(local-c.Offset) / (1 + c.Skew))
}

// ToLocal converts reference time to the badge's local clock.
func (c Correction) ToLocal(ref time.Duration) time.Duration {
	return c.Offset + time.Duration(float64(ref)*(1+c.Skew))
}

// ShiftAt returns the instantaneous clock shift (local - ref) at the given
// reference time — the per-device quantity the paper reports computing.
func (c Correction) ShiftAt(ref time.Duration) time.Duration {
	return c.ToLocal(ref) - ref
}

// ShiftBetween returns the relative shift between two badges' clocks at the
// given reference time (a's local minus b's local).
func ShiftBetween(a, b Correction, ref time.Duration) time.Duration {
	return a.ToLocal(ref) - b.ToLocal(ref)
}

// ObservationsFromRecords extracts sync observations from a badge's record
// stream (KindSync records carry Local plus the reference clock RefTime).
func ObservationsFromRecords(recs []record.Record) []Observation {
	out := make([]Observation, 0, 16)
	for _, r := range recs {
		if r.Kind != record.KindSync {
			continue
		}
		out = append(out, Observation{Local: r.Local, Ref: r.RefTime})
	}
	return out
}

// EstimateFromRecords is a convenience composing ObservationsFromRecords
// and Estimate.
func EstimateFromRecords(recs []record.Record) (Correction, error) {
	return Estimate(ObservationsFromRecords(recs))
}

// Identity is the no-op correction (offset 0, skew 0), useful for the
// reference badge itself and for ablation runs that skip rectification.
func Identity() Correction {
	return Correction{}
}

// Estimator accumulates sync observations incrementally — as a gateway
// delivers a badge's records — and fits a Correction on demand. Fit is
// memoized until new observations arrive and delegates to Estimate over the
// accumulated set, so a fit over observations fed in any number of batches
// is byte-identical to one batch Estimate over the same observations — the
// property the pipeline's incremental rectification relies on.
//
// An Estimator is not safe for concurrent use; callers serialize Observe
// and Fit.
type Estimator struct {
	obs    []Observation
	dirty  bool
	fitted bool
	last   Correction
	err    error
}

// Observe adds one sync exchange.
func (e *Estimator) Observe(o Observation) {
	e.obs = append(e.obs, o)
	e.dirty = true
}

// ObserveRecords feeds every KindSync record into the estimator and returns
// how many observations were added.
func (e *Estimator) ObserveRecords(recs []record.Record) int {
	c := record.NewCursor(recs)
	return e.ObserveCursor(&c)
}

// ObserveCursor feeds every KindSync record the cursor yields into the
// estimator and returns how many observations were added. It visits each
// record exactly once, so fits over out-of-core sources stream without
// materializing the badge's record set.
func (e *Estimator) ObserveCursor(c *record.Cursor) int {
	n := 0
	for c.Next() {
		r := c.Record()
		if r.Kind != record.KindSync {
			continue
		}
		e.Observe(Observation{Local: r.Local, Ref: r.RefTime})
		n++
	}
	return n
}

// N returns the number of accumulated observations.
func (e *Estimator) N() int { return len(e.obs) }

// Fit returns the correction over every observation so far, recomputing
// only when new observations arrived since the last fit.
func (e *Estimator) Fit() (Correction, error) {
	if e.dirty || !e.fitted {
		e.last, e.err = Estimate(e.obs)
		e.dirty = false
		e.fitted = true
	}
	return e.last, e.err
}
