package timesync

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"icares/internal/record"
	"icares/internal/simtime"
	"icares/internal/stats"
)

func TestEstimateRecoversKnownClock(t *testing.T) {
	tests := []struct {
		name    string
		offset  time.Duration
		skewPPM float64
	}{
		{"zero clock", 0, 0},
		{"pure offset", 3 * time.Second, 0},
		{"pure skew", 0, 40},
		{"offset and skew", -2 * time.Second, -25},
		{"large offset", time.Minute, 15},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			osc := simtime.NewOscillator(tt.offset, tt.skewPPM)
			var obs []Observation
			for h := 1; h <= 12; h++ {
				ref := time.Duration(h) * time.Hour
				obs = append(obs, Observation{Local: osc.Read(ref), Ref: ref})
			}
			c, err := Estimate(obs)
			if err != nil {
				t.Fatal(err)
			}
			if d := c.Offset - tt.offset; d < -time.Millisecond || d > time.Millisecond {
				t.Errorf("offset = %v, want %v", c.Offset, tt.offset)
			}
			gotPPM := c.Skew * 1e6
			if d := gotPPM - tt.skewPPM; d < -0.5 || d > 0.5 {
				t.Errorf("skew = %v ppm, want %v", gotPPM, tt.skewPPM)
			}
			// Rectification inverts the clock within a millisecond over the
			// whole mission.
			for _, ref := range []time.Duration{time.Hour, 7 * simtime.DayLength, 14 * simtime.DayLength} {
				back := c.ToReference(osc.Read(ref))
				if d := back - ref; d < -time.Millisecond || d > time.Millisecond {
					t.Errorf("rectified %v -> %v", ref, back)
				}
			}
		})
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(nil); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Estimate([]Observation{{Local: 1, Ref: 1}}); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("single: %v", err)
	}
	same := []Observation{{Local: 5, Ref: 3}, {Local: 6, Ref: 3}}
	if _, err := Estimate(same); !errors.Is(err, ErrDegenerate) {
		t.Errorf("degenerate: %v", err)
	}
}

func TestEstimateNoisyObservations(t *testing.T) {
	rng := stats.NewRNG(11)
	osc := simtime.NewOscillator(500*time.Millisecond, 30)
	var obs []Observation
	for i := 0; i < 14; i++ { // one exchange per night, like the deployment
		ref := time.Duration(i) * simtime.DayLength
		noise := time.Duration(rng.Norm(0, 2e6)) // ~2 ms exchange jitter
		obs = append(obs, Observation{Local: osc.Read(ref) + noise, Ref: ref})
	}
	c, err := Estimate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Offset - 500*time.Millisecond; d < -20*time.Millisecond || d > 20*time.Millisecond {
		t.Errorf("noisy offset = %v", c.Offset)
	}
	if c.Residual <= 0 || c.Residual > 20*time.Millisecond {
		t.Errorf("residual = %v", c.Residual)
	}
	if c.N != 14 {
		t.Errorf("N = %d", c.N)
	}
}

func TestToLocalToReferenceInverse(t *testing.T) {
	c := Correction{Offset: 2 * time.Second, Skew: 35e-6}
	for _, ref := range []time.Duration{0, time.Hour, 10 * simtime.DayLength} {
		if got := c.ToReference(c.ToLocal(ref)); got != ref {
			// Allow a nanosecond of float rounding.
			if d := got - ref; d < -time.Microsecond || d > time.Microsecond {
				t.Errorf("round trip %v -> %v", ref, got)
			}
		}
	}
}

func TestShiftAtAndBetween(t *testing.T) {
	a := Correction{Offset: time.Second, Skew: 0}
	b := Correction{Offset: -time.Second, Skew: 0}
	if got := a.ShiftAt(time.Hour); got != time.Second {
		t.Errorf("ShiftAt = %v", got)
	}
	if got := ShiftBetween(a, b, time.Hour); got != 2*time.Second {
		t.Errorf("ShiftBetween = %v", got)
	}
	// Skew makes shift grow with time.
	c := Correction{Offset: 0, Skew: 10e-6}
	s1 := c.ShiftAt(time.Hour)
	s2 := c.ShiftAt(10 * time.Hour)
	if s2 <= s1 {
		t.Errorf("skewed shift did not grow: %v then %v", s1, s2)
	}
}

func TestObservationsFromRecords(t *testing.T) {
	recs := []record.Record{
		{Local: time.Second, Kind: record.KindAccel},
		{Local: 2 * time.Second, Kind: record.KindSync, RefTime: 1900 * time.Millisecond},
		{Local: 3 * time.Second, Kind: record.KindMic},
		{Local: 4 * time.Second, Kind: record.KindSync, RefTime: 3900 * time.Millisecond},
	}
	obs := ObservationsFromRecords(recs)
	if len(obs) != 2 {
		t.Fatalf("obs = %d", len(obs))
	}
	if obs[0].Local != 2*time.Second || obs[0].Ref != 1900*time.Millisecond {
		t.Errorf("obs[0] = %+v", obs[0])
	}

	c, err := EstimateFromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Offset - 100*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("offset from records = %v", c.Offset)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity()
	if got := id.ToReference(5 * time.Second); got != 5*time.Second {
		t.Errorf("identity rectify = %v", got)
	}
	if got := id.ShiftAt(time.Hour); got != 0 {
		t.Errorf("identity shift = %v", got)
	}
}

// Property: Estimate recovers random clocks to sub-millisecond accuracy from
// noise-free observations.
func TestQuickEstimateRecovery(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		offset := time.Duration(rng.Intn(2_000_001)-1_000_000) * time.Microsecond
		ppm := rng.Range(-100, 100)
		osc := simtime.NewOscillator(offset, ppm)
		obs := make([]Observation, 0, 10)
		for i := 0; i < 10; i++ {
			ref := time.Duration(i) * 6 * time.Hour
			obs = append(obs, Observation{Local: osc.Read(ref), Ref: ref})
		}
		c, err := Estimate(obs)
		if err != nil {
			return false
		}
		d := c.Offset - offset
		if d < -time.Millisecond || d > time.Millisecond {
			return false
		}
		dp := c.Skew*1e6 - ppm
		return dp > -1 && dp < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEstimatorMatchesBatchEstimate pins the incremental estimator's core
// contract: observations fed in any chunking produce the exact fit a single
// batch Estimate gives, and Fit is memoized until new data arrives.
func TestEstimatorMatchesBatchEstimate(t *testing.T) {
	var obs []Observation
	var recs []record.Record
	for i := 0; i < 40; i++ {
		ref := time.Duration(i) * 10 * time.Minute
		local := 3*time.Second + time.Duration(float64(ref)*(1+15e-6))
		obs = append(obs, Observation{Local: local, Ref: ref})
		recs = append(recs, record.Record{Kind: record.KindSync, Local: local, RefTime: ref})
	}
	want, err := Estimate(obs)
	if err != nil {
		t.Fatal(err)
	}

	var e Estimator
	if _, err := e.Fit(); err == nil {
		t.Fatal("empty estimator fitted")
	}
	// Feed in uneven chunks, fitting in between (stale fits must not poison
	// the final one).
	for _, chunk := range [][]record.Record{recs[:3], recs[3:17], recs[17:18], recs[18:]} {
		if n := e.ObserveRecords(chunk); n != len(chunk) {
			t.Fatalf("observed %d of %d records", n, len(chunk))
		}
		e.Fit()
	}
	got, err := e.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("incremental fit %+v != batch fit %+v", got, want)
	}
	if e.N() != len(obs) {
		t.Fatalf("N = %d, want %d", e.N(), len(obs))
	}
}
