package uplink

import (
	"testing"
	"testing/quick"
	"time"

	"icares/internal/stats"
)

// Property: every sent message is received exactly once, no earlier than
// the one-way delay, and in non-decreasing arrival order.
func TestQuickLinkDelivery(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		l := NewLink(time.Duration(1+rng.Intn(60)) * time.Minute)
		if rng.Bool(0.5) {
			l.BytesPerSecond = 50 + rng.Intn(500)
		}
		n := 1 + rng.Intn(40)
		var lastSend time.Duration
		for i := 0; i < n; i++ {
			lastSend += time.Duration(rng.Intn(300)) * time.Second
			if _, err := l.Send(lastSend, Message{
				From: Habitat, Kind: Report, Topic: "t",
				Bytes: rng.Intn(2000),
			}); err != nil {
				return false
			}
		}
		// Drain far in the future.
		got := l.Receive(MissionControl, lastSend+1000*time.Hour)
		if len(got) != n {
			return false
		}
		seen := make(map[uint64]bool, n)
		var prev time.Duration
		for _, m := range got {
			if seen[m.ID] {
				return false
			}
			seen[m.ID] = true
			if m.ArrivesAt < m.SentAt+l.Delay() {
				return false
			}
			if m.ArrivesAt < prev {
				return false
			}
			prev = m.ArrivesAt
		}
		// Nothing left.
		return l.Pending(MissionControl) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLinkSendReceive(b *testing.B) {
	l := NewLink(20 * time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i) * time.Second
		if _, err := l.Send(at, Message{From: Habitat, Kind: Report, Topic: "t", Bytes: 100}); err != nil {
			b.Fatal(err)
		}
		if i%32 == 31 {
			l.Receive(MissionControl, at+time.Hour)
		}
	}
}
