// Package uplink models the habitat <-> mission-control communication link
// with interplanetary latency. During ICAres-1 every exchange with the
// remote mission control was delayed by 20 minutes each way, "reflecting a
// possible Earth-Mars latency", and on day 12 a delayed instruction
// contradicted the course of action the crew had already taken — the
// incident that motivates the paper's call for autonomous support systems.
// This package provides the delayed store-and-forward channel, bandwidth
// accounting, and the stale-command conflict detection a support system
// needs to catch day-12-style incidents mechanically.
package uplink

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"icares/internal/telemetry"
)

// Endpoint identifies a side of the link.
type Endpoint int

// Link endpoints.
const (
	Habitat Endpoint = iota + 1
	MissionControl
)

// String returns the endpoint name.
func (e Endpoint) String() string {
	switch e {
	case Habitat:
		return "habitat"
	case MissionControl:
		return "mission control"
	default:
		return "unknown endpoint"
	}
}

// Kind classifies messages.
type Kind int

// Message kinds.
const (
	// Report is telemetry or a status report.
	Report Kind = iota + 1
	// Command is an instruction expected to be acted upon.
	Command
	// Ack acknowledges a command.
	Ack
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Report:
		return "report"
	case Command:
		return "command"
	case Ack:
		return "ack"
	default:
		return "unknown kind"
	}
}

// Message is one transmission over the link.
type Message struct {
	ID   uint64
	From Endpoint
	Kind Kind
	// Topic names the mission aspect the message concerns (e.g.
	// "task-plan", "power-budget"); conflict detection is per topic.
	Topic string
	Body  string
	// BasisVersion is the topic state version the sender believed current
	// when composing the message. Commands based on a superseded version
	// are flagged as conflicts on arrival.
	BasisVersion uint64
	// SentAt and ArrivesAt are mission times.
	SentAt    time.Duration
	ArrivesAt time.Duration
	// Bytes is the message size for bandwidth accounting.
	Bytes int
}

// Errors of the link.
var (
	ErrBadEndpoint = errors.New("uplink: bad endpoint")
	ErrTooLarge    = errors.New("uplink: message exceeds link MTU")
)

// DefaultDelay is the ICAres-1 one-way latency.
const DefaultDelay = 20 * time.Minute

// Link is a bidirectional store-and-forward channel with one-way delay and
// a byte-rate cap. A Link is safe for concurrent use: the habitat side,
// the mission-control side, and a metrics scraper may all act on it at
// once, and StatsSnapshot always reads one consistent instant.
type Link struct {
	delay time.Duration
	// BytesPerSecond caps throughput; queued messages serialize. Zero
	// means unlimited. Set before concurrent use begins.
	BytesPerSecond int
	// MTU bounds a single message (0 = unlimited). Set before concurrent
	// use begins.
	MTU int

	mu       sync.Mutex
	nextID   uint64
	inFlight map[Endpoint][]Message // keyed by destination
	// lineFree is when the shared transmit line is next idle, per sender.
	lineFree map[Endpoint]time.Duration
	sent     map[Endpoint]int64 // bytes by sender
	// blackouts are intervals during which no transmission may start;
	// sends queue and begin when the window lifts. Sorted by start.
	blackouts []blackout
	// blackout deferral accounting: how many sends a blackout pushed, and
	// the total transmit time deferred.
	deferrals     int
	deferredTotal time.Duration

	// Telemetry mirrors (nil until Instrument; nil handles are no-ops).
	cMessages, cBytes map[Endpoint]*telemetry.Counter
	gPending          map[Endpoint]*telemetry.Gauge
	cDeferrals        *telemetry.Counter
	hDefer            *telemetry.Histogram

	// Flight recorder (nil until AttachJournal).
	journal *telemetry.Journal
}

// DeferBuckets is the histogram layout for blackout deferrals in seconds
// (a minute to a workday — solar conjunctions are long).
var DeferBuckets = []float64{60, 300, 900, 1800, 3600, 7200, 14400, 28800}

// LinkStats is one consistent view of a link's traffic state.
type LinkStats struct {
	// Messages is the total sent over the link (both directions).
	Messages uint64
	// PendingToHabitat and PendingToMissionControl count undelivered
	// messages per destination — the queue depth.
	PendingToHabitat, PendingToMissionControl int
	// BytesFromHabitat and BytesFromMissionControl are sender byte totals.
	BytesFromHabitat, BytesFromMissionControl int64
	// BlackoutDeferrals counts sends a blackout pushed out; BlackoutDeferred
	// is the total transmit time deferred.
	BlackoutDeferrals int
	BlackoutDeferred  time.Duration
}

// blackout is one no-transmit interval [from, to).
type blackout struct{ from, to time.Duration }

// NewLink creates a link with the given one-way delay (DefaultDelay if
// zero or negative).
func NewLink(delay time.Duration) *Link {
	if delay <= 0 {
		delay = DefaultDelay
	}
	return &Link{
		delay:    delay,
		inFlight: make(map[Endpoint][]Message),
		lineFree: make(map[Endpoint]time.Duration),
		sent:     make(map[Endpoint]int64),
	}
}

// Delay returns the one-way latency.
func (l *Link) Delay() time.Duration { return l.delay }

// Instrument mirrors the link's counters into reg:
//
//	uplink_messages_total{from=...}, uplink_sent_bytes_total{from=...},
//	uplink_pending{dst=...}, uplink_blackout_deferrals_total,
//	uplink_blackout_defer_seconds (histogram, DeferBuckets)
func (l *Link) Instrument(reg *telemetry.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cMessages = make(map[Endpoint]*telemetry.Counter)
	l.cBytes = make(map[Endpoint]*telemetry.Counter)
	l.gPending = make(map[Endpoint]*telemetry.Gauge)
	for _, e := range []Endpoint{Habitat, MissionControl} {
		l.cMessages[e] = reg.Counter("uplink_messages_total", telemetry.L("from", e.String()))
		l.cBytes[e] = reg.Counter("uplink_sent_bytes_total", telemetry.L("from", e.String()))
		l.gPending[e] = reg.Gauge("uplink_pending", telemetry.L("dst", e.String()))
	}
	l.cDeferrals = reg.Counter("uplink_blackout_deferrals_total")
	l.hDefer = reg.Histogram("uplink_blackout_defer_seconds", DeferBuckets)
}

// AttachJournal wires the link into a flight recorder: each send a
// blackout window defers becomes a journal event (stamped with the send's
// mission time), recording when the window lifts and how long the message
// waited. Call before concurrent use begins.
func (l *Link) AttachJournal(j *telemetry.Journal) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.journal = j
}

// StatsSnapshot returns every link counter from a single instant.
func (l *Link) StatsSnapshot() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkStats{
		Messages:                l.nextID,
		PendingToHabitat:        len(l.inFlight[Habitat]),
		PendingToMissionControl: len(l.inFlight[MissionControl]),
		BytesFromHabitat:        l.sent[Habitat],
		BytesFromMissionControl: l.sent[MissionControl],
		BlackoutDeferrals:       l.deferrals,
		BlackoutDeferred:        l.deferredTotal,
	}
}

// AddBlackout registers [from, to) as a communication blackout (solar
// conjunction, antenna repointing, a dust storm over the relay). The link
// queues rather than drops: a message sent during a blackout starts
// transmitting when the window lifts, keeping its place in the rate-cap
// queue, and conflict detection still applies to it on (late) arrival.
func (l *Link) AddBlackout(from, to time.Duration) {
	if to <= from {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.blackouts = append(l.blackouts, blackout{from: from, to: to})
	sort.Slice(l.blackouts, func(i, j int) bool {
		return l.blackouts[i].from < l.blackouts[j].from
	})
}

// Blacked reports whether transmission is blocked at mission time at.
func (l *Link) Blacked(at time.Duration) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, b := range l.blackouts {
		if at >= b.from && at < b.to {
			return true
		}
		if b.from > at {
			break
		}
	}
	return false
}

// deferPastBlackouts pushes a transmission start time out of any blackout
// windows (cascading across back-to-back windows).
func (l *Link) deferPastBlackouts(txStart time.Duration) time.Duration {
	for _, b := range l.blackouts {
		if txStart >= b.from && txStart < b.to {
			txStart = b.to
		}
	}
	return txStart
}

func other(e Endpoint) (Endpoint, error) {
	switch e {
	case Habitat:
		return MissionControl, nil
	case MissionControl:
		return Habitat, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadEndpoint, e)
	}
}

// Send enqueues a message at mission time now. The arrival time reflects
// both propagation delay and transmission serialization under the rate cap.
func (l *Link) Send(now time.Duration, msg Message) (Message, error) {
	dst, err := other(msg.From)
	if err != nil {
		return Message{}, err
	}
	if l.MTU > 0 && msg.Bytes > l.MTU {
		return Message{}, fmt.Errorf("%w: %d > %d", ErrTooLarge, msg.Bytes, l.MTU)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	msg.ID = l.nextID
	msg.SentAt = now

	txStart := now
	if free := l.lineFree[msg.From]; free > txStart {
		txStart = free
	}
	clear := l.deferPastBlackouts(txStart)
	if clear > txStart {
		deferred := clear - txStart
		l.deferrals++
		l.deferredTotal += deferred
		l.cDeferrals.Inc()
		l.hDefer.Observe(deferred.Seconds())
		l.journal.Emit(now, telemetry.SevWarn, "uplink", "blackout-deferral",
			"send deferred by blackout window",
			telemetry.F("from", msg.From.String()),
			telemetry.F("topic", msg.Topic),
			telemetry.F("deferred", deferred.String()),
			telemetry.F("clears_at", clear.String()))
	}
	txStart = clear
	var txTime time.Duration
	if l.BytesPerSecond > 0 && msg.Bytes > 0 {
		txTime = time.Duration(float64(msg.Bytes) / float64(l.BytesPerSecond) * float64(time.Second))
	}
	l.lineFree[msg.From] = txStart + txTime
	msg.ArrivesAt = txStart + txTime + l.delay

	l.inFlight[dst] = append(l.inFlight[dst], msg)
	l.sent[msg.From] += int64(msg.Bytes)
	l.cMessages[msg.From].Inc()
	l.cBytes[msg.From].Add(uint64(msg.Bytes))
	l.gPending[dst].Set(float64(len(l.inFlight[dst])))
	return msg, nil
}

// Receive returns (and removes) all messages that have arrived at the
// endpoint by mission time now, in arrival order.
func (l *Link) Receive(at Endpoint, now time.Duration) []Message {
	l.mu.Lock()
	defer l.mu.Unlock()
	queue := l.inFlight[at]
	var arrived, pending []Message
	for _, m := range queue {
		if m.ArrivesAt <= now {
			arrived = append(arrived, m)
		} else {
			pending = append(pending, m)
		}
	}
	l.inFlight[at] = pending
	l.gPending[at].Set(float64(len(pending)))
	sort.Slice(arrived, func(i, j int) bool {
		if arrived[i].ArrivesAt != arrived[j].ArrivesAt {
			return arrived[i].ArrivesAt < arrived[j].ArrivesAt
		}
		return arrived[i].ID < arrived[j].ID
	})
	return arrived
}

// Pending returns the number of undelivered messages heading to the
// endpoint.
func (l *Link) Pending(at Endpoint) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.inFlight[at])
}

// BytesSent returns total bytes sent by the endpoint.
func (l *Link) BytesSent(from Endpoint) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sent[from]
}

// TopicState tracks per-topic state versions on one side of the link and
// detects stale commands — the day-12 failure mode: a command composed
// against a superseded state version arriving after the crew already acted.
// Safe for concurrent use.
type TopicState struct {
	mu        sync.Mutex
	versions  map[string]uint64
	conflicts int
	cConflict *telemetry.Counter
}

// NewTopicState creates an empty version tracker.
func NewTopicState() *TopicState {
	return &TopicState{versions: make(map[string]uint64)}
}

// Instrument counts flagged stale commands into reg as
// uplink_stale_conflicts_total.
func (t *TopicState) Instrument(reg *telemetry.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cConflict = reg.Counter("uplink_stale_conflicts_total")
}

// Conflicts returns how many stale commands Check has flagged.
func (t *TopicState) Conflicts() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.conflicts
}

// Version returns the current version of a topic (0 if never advanced).
func (t *TopicState) Version(topic string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.versions[topic]
}

// Advance records a local state change on the topic (e.g. the crew took a
// course of action) and returns the new version.
func (t *TopicState) Advance(topic string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.versions[topic]++
	return t.versions[topic]
}

// Conflict describes a stale command.
type Conflict struct {
	Msg            Message
	CurrentVersion uint64
}

// Check classifies an arriving command against local state: it returns a
// non-nil Conflict when the command's basis version is older than the
// current topic version. Reports and acks never conflict.
func (t *TopicState) Check(msg Message) *Conflict {
	if msg.Kind != Command {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.versions[msg.Topic]
	if msg.BasisVersion < cur {
		t.conflicts++
		t.cConflict.Inc()
		return &Conflict{Msg: msg, CurrentVersion: cur}
	}
	return nil
}
