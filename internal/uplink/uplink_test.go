package uplink

import (
	"errors"
	"testing"
	"time"
)

func TestSendReceiveDelay(t *testing.T) {
	l := NewLink(20 * time.Minute)
	msg, err := l.Send(0, Message{From: Habitat, Kind: Report, Topic: "status", Bytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if msg.ArrivesAt != 20*time.Minute {
		t.Errorf("arrives at %v", msg.ArrivesAt)
	}
	// Not yet arrived.
	if got := l.Receive(MissionControl, 19*time.Minute); len(got) != 0 {
		t.Errorf("early delivery: %v", got)
	}
	if l.Pending(MissionControl) != 1 {
		t.Errorf("pending = %d", l.Pending(MissionControl))
	}
	got := l.Receive(MissionControl, 20*time.Minute)
	if len(got) != 1 || got[0].Topic != "status" {
		t.Fatalf("delivery = %v", got)
	}
	// Consumed.
	if got := l.Receive(MissionControl, time.Hour); len(got) != 0 {
		t.Errorf("double delivery: %v", got)
	}
}

func TestReceiveOrdering(t *testing.T) {
	l := NewLink(10 * time.Minute)
	for i, topic := range []string{"a", "b", "c"} {
		if _, err := l.Send(time.Duration(i)*time.Minute, Message{From: MissionControl, Kind: Command, Topic: topic}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Receive(Habitat, time.Hour)
	if len(got) != 3 {
		t.Fatalf("deliveries = %d", len(got))
	}
	if got[0].Topic != "a" || got[2].Topic != "c" {
		t.Errorf("order = %v, %v, %v", got[0].Topic, got[1].Topic, got[2].Topic)
	}
}

func TestDefaultDelayApplied(t *testing.T) {
	l := NewLink(0)
	if l.Delay() != DefaultDelay {
		t.Errorf("delay = %v", l.Delay())
	}
}

func TestBadEndpoint(t *testing.T) {
	l := NewLink(time.Minute)
	if _, err := l.Send(0, Message{From: Endpoint(9)}); !errors.Is(err, ErrBadEndpoint) {
		t.Errorf("bad endpoint: %v", err)
	}
}

func TestMTU(t *testing.T) {
	l := NewLink(time.Minute)
	l.MTU = 10
	if _, err := l.Send(0, Message{From: Habitat, Bytes: 11}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize: %v", err)
	}
	if _, err := l.Send(0, Message{From: Habitat, Bytes: 10}); err != nil {
		t.Errorf("at MTU: %v", err)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	l := NewLink(time.Minute)
	l.BytesPerSecond = 100
	// Two 1000-byte messages: second must wait for the first's 10 s
	// transmission.
	m1, err := l.Send(0, Message{From: Habitat, Bytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := l.Send(0, Message{From: Habitat, Bytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if m1.ArrivesAt != time.Minute+10*time.Second {
		t.Errorf("m1 arrives %v", m1.ArrivesAt)
	}
	if m2.ArrivesAt != time.Minute+20*time.Second {
		t.Errorf("m2 arrives %v", m2.ArrivesAt)
	}
	if l.BytesSent(Habitat) != 2000 {
		t.Errorf("bytes sent = %d", l.BytesSent(Habitat))
	}
}

func TestTopicStateConflict(t *testing.T) {
	ts := NewTopicState()
	// Mission control composes a command against version 0.
	cmd := Message{Kind: Command, Topic: "task-plan", BasisVersion: ts.Version("task-plan")}
	// Meanwhile the crew acts: version advances.
	if v := ts.Advance("task-plan"); v != 1 {
		t.Fatalf("version = %d", v)
	}
	// The delayed command arrives: stale.
	c := ts.Check(cmd)
	if c == nil {
		t.Fatal("stale command not flagged")
	}
	if c.CurrentVersion != 1 {
		t.Errorf("current version = %d", c.CurrentVersion)
	}
	// A fresh command passes.
	fresh := Message{Kind: Command, Topic: "task-plan", BasisVersion: 1}
	if ts.Check(fresh) != nil {
		t.Error("fresh command flagged")
	}
	// Reports never conflict.
	rep := Message{Kind: Report, Topic: "task-plan", BasisVersion: 0}
	if ts.Check(rep) != nil {
		t.Error("report flagged")
	}
}

func TestDay12IncidentEndToEnd(t *testing.T) {
	// Reconstruction of the paper's day-12 event: the crew reports state,
	// mission control replies with an instruction based on that state, but
	// by the time it arrives (40 min round trip) the crew has already
	// taken a different course of action.
	l := NewLink(20 * time.Minute)
	crew := NewTopicState()

	// t=0: crew sends a status report (topic version 0).
	if _, err := l.Send(0, Message{
		From: Habitat, Kind: Report, Topic: "experiment-7",
		BasisVersion: crew.Version("experiment-7"),
	}); err != nil {
		t.Fatal(err)
	}

	// t=20m: MC receives, composes a command against version 0.
	inbox := l.Receive(MissionControl, 20*time.Minute)
	if len(inbox) != 1 {
		t.Fatal("report not delivered")
	}
	if _, err := l.Send(20*time.Minute, Message{
		From: MissionControl, Kind: Command, Topic: "experiment-7",
		BasisVersion: inbox[0].BasisVersion,
		Body:         "abort procedure and restart with protocol B",
	}); err != nil {
		t.Fatal(err)
	}

	// t=25m: the crew, unable to wait, proceeds with protocol A.
	crew.Advance("experiment-7")

	// t=40m: the command arrives — and must be flagged as conflicting.
	cmds := l.Receive(Habitat, 40*time.Minute)
	if len(cmds) != 1 {
		t.Fatal("command not delivered")
	}
	if c := crew.Check(cmds[0]); c == nil {
		t.Fatal("day-12 conflict not detected")
	}
}

func TestEndpointAndKindStrings(t *testing.T) {
	if Habitat.String() != "habitat" || MissionControl.String() != "mission control" {
		t.Error("endpoint names")
	}
	if Endpoint(9).String() != "unknown endpoint" {
		t.Error("unknown endpoint name")
	}
	if Report.String() != "report" || Command.String() != "command" || Ack.String() != "ack" {
		t.Error("kind names")
	}
	if Kind(9).String() != "unknown kind" {
		t.Error("unknown kind name")
	}
}

func TestBlackoutQueuesInsteadOfDropping(t *testing.T) {
	l := NewLink(20 * time.Minute)
	l.AddBlackout(time.Hour, 2*time.Hour)
	if !l.Blacked(90*time.Minute) || l.Blacked(2*time.Hour) {
		t.Error("blackout window membership wrong")
	}
	// Sent mid-blackout: queued, transmission starts when the window
	// lifts, so arrival is blackout end + propagation delay.
	msg, err := l.Send(90*time.Minute, Message{From: Habitat, Kind: Report, Topic: "status"})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*time.Hour + 20*time.Minute; msg.ArrivesAt != want {
		t.Errorf("arrives at %v, want %v", msg.ArrivesAt, want)
	}
	if got := l.Receive(MissionControl, 2*time.Hour+19*time.Minute); len(got) != 0 {
		t.Errorf("delivery during propagation: %v", got)
	}
	if got := l.Receive(MissionControl, 2*time.Hour+20*time.Minute); len(got) != 1 {
		t.Errorf("queued message never delivered: %v", got)
	}
}

func TestBlackoutCascadesAcrossWindows(t *testing.T) {
	l := NewLink(time.Minute)
	// Back-to-back windows: the transmission start must clear both.
	l.AddBlackout(time.Hour, 2*time.Hour)
	l.AddBlackout(2*time.Hour, 3*time.Hour)
	msg, err := l.Send(90*time.Minute, Message{From: MissionControl, Kind: Report, Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3*time.Hour + time.Minute; msg.ArrivesAt != want {
		t.Errorf("arrives at %v, want %v", msg.ArrivesAt, want)
	}
}

func TestBlackoutRespectsRateCapQueue(t *testing.T) {
	l := NewLink(time.Minute)
	l.BytesPerSecond = 10
	l.AddBlackout(0, time.Hour)
	// Two messages sent during the blackout serialize after it lifts.
	m1, err := l.Send(0, Message{From: Habitat, Kind: Report, Topic: "a", Bytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := l.Send(0, Message{From: Habitat, Kind: Report, Topic: "b", Bytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Hour + 10*time.Second + time.Minute; m1.ArrivesAt != want {
		t.Errorf("first arrives at %v, want %v", m1.ArrivesAt, want)
	}
	if want := time.Hour + 20*time.Second + time.Minute; m2.ArrivesAt != want {
		t.Errorf("second arrives at %v, want %v", m2.ArrivesAt, want)
	}
}

func TestStaleCommandAfterBlackoutStillConflicts(t *testing.T) {
	// The day-12 failure mode, aggravated by a blackout: mission control
	// composes a command against version 1, the blackout delays it, and by
	// arrival the crew has advanced the topic — conflict detection must
	// still fire on the late arrival.
	l := NewLink(20 * time.Minute)
	l.AddBlackout(time.Hour, 3*time.Hour)
	habitat := NewTopicState()
	habitat.Advance("task-plan") // version 1, known to both sides

	msg, err := l.Send(time.Hour, Message{
		From: MissionControl, Kind: Command, Topic: "task-plan", BasisVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if msg.ArrivesAt <= 3*time.Hour {
		t.Fatalf("blackout did not delay the command: arrives %v", msg.ArrivesAt)
	}
	// During the blackout the crew acts on its own (autonomy).
	habitat.Advance("task-plan") // version 2
	arrived := l.Receive(Habitat, msg.ArrivesAt)
	if len(arrived) != 1 {
		t.Fatalf("arrivals = %d", len(arrived))
	}
	c := habitat.Check(arrived[0])
	if c == nil {
		t.Fatal("stale command arriving after blackout not flagged")
	}
	if c.CurrentVersion != 2 {
		t.Errorf("conflict current version = %d, want 2", c.CurrentVersion)
	}
}
