package icares

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"icares/internal/habitat"
	"icares/internal/record"
	"icares/internal/segment"
	"icares/internal/sociometry"
	"icares/internal/store"
)

// TestArchiveReportMatchesResident is the acceptance path for out-of-core
// analytics: a full simulated mission, rectified, archived as segments, and
// reopened must produce a Table I report byte-identical to the resident
// pipeline's — through the facade a ground analyst would actually use.
func TestArchiveReportMatchesResident(t *testing.T) {
	m := facadeMission(t)
	pMem, err := m.Pipeline(TrueAssignment)
	if err != nil {
		t.Fatal(err)
	}
	// Rectify before saving so the archive carries reference-time segments
	// plus the manifest corrections — the realistic pull order.
	if _, err := pMem.RectifyClocks(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := m.Result().Dataset.SaveSegments(dir); err != nil {
		t.Fatal(err)
	}

	ss, rep, err := store.OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if !rep.Clean() {
		t.Fatalf("dirty load report: %+v", rep)
	}
	if !ss.Rectified() {
		t.Fatal("archive of a rectified dataset not marked rectified")
	}
	pSeg, err := m.PipelineOver(ss, TrueAssignment)
	if err != nil {
		t.Fatal(err)
	}

	memRep, segRep := pMem.Report(), pSeg.Report()
	if memRep != segRep {
		t.Errorf("archive-backed report differs from resident report:\n--- resident ---\n%s\n--- archive ---\n%s", memRep, segRep)
	}
}

// soakBadges/soakDays size the paper-scale soak: the full 30-badge fleet
// from the title over a multi-day window, written straight to segments
// without ever holding the mission in memory.
const (
	soakBadges = 30
	soakDays   = 3
)

// writeSoakArchive synthesizes a 30-badge archive segment-by-segment —
// records are generated in timestamp order and streamed to the writer, so
// building the fixture needs O(1) memory just like analyzing it should.
func writeSoakArchive(tb testing.TB, dir string) {
	tb.Helper()
	sites := habitat.Standard().Beacons()
	var framed int64
	count := func(r record.Record) {
		sz, err := record.EncodedSize(r)
		if err != nil {
			tb.Fatal(err)
		}
		framed += int64(sz)
	}
	for b := 1; b <= soakBadges; b++ {
		f, err := os.Create(filepath.Join(dir, "badge-soak-"+string(rune('a'+(b-1)/26))+string(rune('a'+(b-1)%26))+".seg"))
		if err != nil {
			tb.Fatal(err)
		}
		// 512-record blocks keep the unit of decode small: the block cache
		// pins cacheBlocks decoded blocks per reader, so block size is the
		// lever on resident memory for a 30-reader fleet scan.
		sw, err := segment.NewWriter(f, uint16(b), 512)
		if err != nil {
			tb.Fatal(err)
		}
		for day := 2; day < 2+soakDays; day++ {
			start := time.Duration(day-1) * 24 * time.Hour
			end := start + 24*time.Hour
			wearOn := record.Record{Local: start, Kind: record.KindWear, Worn: true}
			if err := sw.Append(wearOn); err != nil {
				tb.Fatal(err)
			}
			count(wearOn)
			// The sensors inside one second are generated out of phase, so
			// buffer the second and sort before streaming to the writer —
			// the writer demands nondecreasing timestamps.
			second := make([]record.Record, 0, 16)
			for sec := 0; sec < 24*60*60; sec++ {
				at := start + time.Duration(sec)*time.Second
				second = second[:0]
				// Env at 3 Hz is the volume driver, like the paper's
				// environmental logging dominating the 150 GiB.
				for i := 0; i < 3; i++ {
					second = append(second, record.Record{
						Local: at + time.Duration(i)*333*time.Millisecond,
						Kind:  record.KindEnv,
						TempC: float32(20 + (sec+i)%5), PressHPa: float32(1008 + b%7),
						LightLux: float32((sec * (b + i)) % 700),
					})
				}
				if sec%5 == 0 {
					site := sites[(sec/5+b)%len(sites)]
					second = append(second, record.Record{Local: at + 400*time.Millisecond, Kind: record.KindBeacon,
						PeerID: uint16(site.ID), RSSI: float32(-44 - (sec+b)%28)})
				}
				if sec%60 == 0 {
					second = append(second, record.Record{Local: at + 500*time.Millisecond, Kind: record.KindMic,
						SpeechDetected: (sec/60+b)%4 == 0, LoudnessDB: float32(45 + (sec/60)%30),
						FundamentalHz: float32(115 + (b*37)%120), SpeechFraction: 0.4})
				}
				if sec%100 == 0 {
					for i := 0; i < 10; i++ {
						second = append(second, record.Record{Local: at + 600*time.Millisecond + time.Duration(i)*10*time.Millisecond,
							Kind: record.KindAccel,
							AX:   int16((sec*7 + i*13) % 900), AY: int16((sec*11 + i*17) % 900),
							AZ: int16(16000 + (sec+i)%500)})
					}
				}
				if sec%300 == 0 {
					peer := 1 + (b+sec/300)%soakBadges
					if peer != b {
						second = append(second, record.Record{Local: at + 700*time.Millisecond, Kind: record.KindIR,
							PeerID: uint16(peer)})
					}
				}
				sort.Slice(second, func(i, j int) bool { return second[i].Local < second[j].Local })
				for _, r := range second {
					if err := sw.Append(r); err != nil {
						tb.Fatal(err)
					}
					count(r)
				}
			}
			wearOff := record.Record{Local: end - time.Millisecond, Kind: record.KindWear, Worn: false}
			if err := sw.Append(wearOff); err != nil {
				tb.Fatal(err)
			}
			count(wearOff)
		}
		if err := sw.Finish(); err != nil {
			tb.Fatal(err)
		}
		if err := f.Close(); err != nil {
			tb.Fatal(err)
		}
	}
	// A real archiver writes the manifest sidecar; without it, the first
	// EncodedBytes() call decodes the whole archive just to size it, which
	// would swamp the soak's memory measurement with fixture artifacts.
	man := fmt.Sprintf("{\"rectified\":false,\"framed_bytes\":%d}\n", framed)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(man), 0o644); err != nil {
		tb.Fatal(err)
	}
}

// soakNames returns 30 crew names and their badge assignment for the soak
// archive.
func soakNames() ([]string, map[string]store.BadgeID) {
	names := make([]string, soakBadges)
	badges := make(map[string]store.BadgeID, soakBadges)
	for i := range names {
		names[i] = "N" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		badges[names[i]] = store.BadgeID(i + 1)
	}
	return names, badges
}

// runSoak opens the archive, runs the full report with a bounded block
// cache, and returns (peak heap delta during the report, bytes on disk).
func runSoak(tb testing.TB, dir string) (peakDelta uint64, onDisk int64) {
	tb.Helper()
	ss, rep, err := store.OpenSegments(dir)
	if err != nil {
		tb.Fatal(err)
	}
	defer ss.Close()
	if !rep.Clean() {
		tb.Fatalf("dirty load report: %+v", rep)
	}
	// One cached block per reader suffices: every derivation is a single
	// forward scan, so the cache only needs the block under the cursor —
	// more would just pin decoded records across all 30 readers.
	ss.SetCacheBlocks(1)
	onDisk = ss.BytesOnDisk()

	names, badges := soakNames()
	p, err := newSoakPipeline(ss, names, badges)
	if err != nil {
		tb.Fatal(err)
	}
	p.SetLocWindow(60 * time.Second) // divides the day: per-day folds stay exact
	p.Parallelism = 4

	// Run the report under an explicit memory budget, the way a
	// memory-constrained ground station actually would: GOMEMLIMIT (via
	// SetMemoryLimit) makes the collector enforce the bound regardless of
	// machine load. Without it the peak depends on how far the concurrent
	// marker falls behind the workers — pure scheduling noise. The budget is
	// soft: if the live set genuinely exceeded it, the heap would still grow
	// past it and the assertion below would fail.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc
	budget := onDisk / 5 // 20% of the archive: margin under the asserted 25%
	oldLimit := debug.SetMemoryLimit(int64(baseline) + budget)
	defer debug.SetMemoryLimit(oldLimit)
	oldGC := debug.SetGCPercent(50)
	defer debug.SetGCPercent(oldGC)

	var peak atomic.Uint64
	peak.Store(baseline)
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				for {
					cur := peak.Load()
					if s.HeapAlloc <= cur || peak.CompareAndSwap(cur, s.HeapAlloc) {
						break
					}
				}
			}
		}
	}()

	out := p.Report()
	close(done)
	<-sampled
	if len(out) == 0 {
		tb.Fatal("empty report")
	}
	return peak.Load() - baseline, onDisk
}

func newSoakPipeline(ss *store.SegmentStore, names []string, badges map[string]store.BadgeID) (*sociometry.Pipeline, error) {
	return sociometry.NewPipeline(sociometry.Source{
		Habitat:  habitat.Standard(),
		Data:     ss,
		Names:    names,
		BadgeFor: func(name string, day int) store.BadgeID { return badges[name] },
		FirstDay: 2,
		LastDay:  1 + soakDays,
	})
}

// TestOutOfCoreSoak is the paper-scale memory acceptance test: a 30-badge
// multi-day archive (tens of millions of records) analyzed end-to-end must
// peak well under the dataset's on-disk size — the point of running
// analytics against segment views instead of loading the mission.
//
// The measurement runs in a re-exec'd child process: other tests in this
// binary pin a shared simulated mission in a package variable, and that
// unrelated live heap inflates the GC pacer's target (and therefore the
// observed peak) by an amount that depends on test order. A fresh process
// measures the analysis, not its neighbors.
func TestOutOfCoreSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale soak in -short mode")
	}
	if os.Getenv("ICARES_SOAK_CHILD") == "" {
		exe, err := os.Executable()
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(exe, "-test.run", "^TestOutOfCoreSoak$", "-test.v")
		cmd.Env = append(os.Environ(), "ICARES_SOAK_CHILD=1")
		out, err := cmd.CombinedOutput()
		t.Logf("soak child:\n%s", out)
		if err != nil {
			t.Fatalf("soak child failed: %v", err)
		}
		return
	}
	dir := t.TempDir()
	writeSoakArchive(t, dir)
	peakDelta, onDisk := runSoak(t, dir)
	frac := float64(peakDelta) / float64(onDisk)
	t.Logf("soak: %d badges × %d days, %.1f MiB on disk, peak heap delta %.1f MiB (%.1f%% of disk)",
		soakBadges, soakDays, float64(onDisk)/(1<<20), float64(peakDelta)/(1<<20), 100*frac)
	if onDisk < 64<<20 {
		t.Fatalf("archive only %.1f MiB on disk; fixture no longer paper-scale", float64(onDisk)/(1<<20))
	}
	if frac >= 0.25 {
		t.Errorf("peak heap delta %.1f MiB is %.1f%% of the %.1f MiB archive, want < 25%%",
			float64(peakDelta)/(1<<20), 100*frac, float64(onDisk)/(1<<20))
	}
}

// BenchmarkOutOfCoreReport measures the ground-station hot path for a
// pulled-down mission: open the segment archive, build a pipeline over it,
// and render the full Table I report — per iteration, cold caches.
func BenchmarkOutOfCoreReport(b *testing.B) {
	m, err := Simulate(Options{Seed: 5, Days: 3})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := m.Result().Dataset.SaveSegments(dir); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss, rep, err := store.OpenSegments(dir)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("dirty load report")
		}
		p, err := m.PipelineOver(ss, TrueAssignment)
		if err != nil {
			b.Fatal(err)
		}
		if len(p.Report()) == 0 {
			b.Fatal("empty report")
		}
		ss.Close()
	}
}

// BenchmarkOutOfCoreSoak runs the paper-scale 30-badge soak and records the
// peak-heap-to-disk ratio alongside latency, so the bench log tracks the
// memory bound the soak test asserts.
func BenchmarkOutOfCoreSoak(b *testing.B) {
	dir := b.TempDir()
	writeSoakArchive(b, dir)
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peak, onDisk := runSoak(b, dir)
		frac = float64(peak) / float64(onDisk)
	}
	b.ReportMetric(frac, "peak_heap_frac_of_disk")
}
