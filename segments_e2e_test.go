package icares

import (
	"testing"
	"time"

	"icares/internal/record"
	"icares/internal/store"
)

// The acceptance path for the segment store: a full simulated mission saved
// as segments reopens out-of-core byte-identical, answers every view the
// in-memory store answers — including inverted windows — and lands at a
// compression ratio of at least 2x over the framed log encoding.
func TestMissionSegmentsRoundTrip(t *testing.T) {
	m := facadeMission(t)
	d := m.Result().Dataset
	dir := t.TempDir()
	if err := d.SaveSegments(dir); err != nil {
		t.Fatalf("SaveSegments: %v", err)
	}
	ss, rep, err := store.OpenSegments(dir)
	if err != nil {
		t.Fatalf("OpenSegments: %v", err)
	}
	defer ss.Close()
	if !rep.Clean() {
		t.Fatalf("report not clean: %+v", rep)
	}
	if ss.TotalRecords() != d.TotalRecords() {
		t.Fatalf("TotalRecords = %d, want %d", ss.TotalRecords(), d.TotalRecords())
	}

	horizon := m.Horizon()
	for _, id := range d.Badges() {
		mem, seg := d.Series(id), ss.Series(id)
		if seg == nil {
			t.Fatalf("badge %d has no segment", id)
		}
		want, got := mem.All(), seg.All()
		if len(want) != len(got) {
			t.Fatalf("badge %d: %d records out-of-core, want %d", id, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("badge %d record %d differs:\n mem %+v\n seg %+v", id, i, want[i], got[i])
			}
		}
		for _, k := range []record.Kind{record.KindAccel, record.KindMic, record.KindBeacon, record.KindNeighbor, record.KindIR} {
			if len(mem.Kind(k)) != len(seg.Kind(k)) {
				t.Fatalf("badge %d Kind(%v): %d vs %d", id, k, len(seg.Kind(k)), len(mem.Kind(k)))
			}
		}
		windows := [][2]time.Duration{
			{horizon / 4, horizon / 2},
			{horizon / 2, horizon / 4}, // inverted: empty, not a panic
			{0, horizon},
		}
		for _, w := range windows {
			if lm, ls := len(mem.Range(w[0], w[1])), len(seg.Range(w[0], w[1])); lm != ls {
				t.Fatalf("badge %d Range(%v,%v): %d vs %d", id, w[0], w[1], ls, lm)
			}
			if lm, ls := len(mem.RangeKind(w[0], w[1], record.KindBeacon)), len(seg.RangeKind(w[0], w[1], record.KindBeacon)); lm != ls {
				t.Fatalf("badge %d RangeKind(%v,%v): %d vs %d", id, w[0], w[1], ls, lm)
			}
		}
	}

	encoded, onDisk := d.EncodedBytes(), ss.BytesOnDisk()
	ratio := float64(encoded) / float64(onDisk)
	t.Logf("framed %d B, segments %d B, ratio %.2fx", encoded, onDisk, ratio)
	if ratio < 2 {
		t.Errorf("compression ratio %.2fx < 2x", ratio)
	}
}
